//! The dynamic partition controller (§3.5, "Dynamically Changing the
//! Partition Size").
//!
//! Each partitioned structure (ROB, LQ, SQ — the RS/PRF limits follow the
//! ROB) has a controller that counts full-window-stall cycles caused by each
//! section. When one section's stall count exceeds the other's by the
//! threshold (the paper uses 4 cycles), that section is expanded by the
//! structure's step (8 entries for ROB/RS, 2 for LQ/SQ) and the counters
//! reset.

/// Which way to move partition capacity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Resize {
    /// Expand the critical section by the step.
    GrowCritical,
    /// Expand the non-critical section by the step.
    GrowNonCritical,
}

/// Stall-counter-driven partition controller for one structure.
///
/// ```
/// use cdf_core::partition::{PartitionController, Resize};
/// let mut pc = PartitionController::new(4, 8);
/// // Five stalls charged to the critical section, none to non-critical:
/// let mut decision = None;
/// for _ in 0..5 {
///     decision = pc.on_stall_cycle(true);
/// }
/// assert_eq!(decision, Some(Resize::GrowCritical));
/// ```
#[derive(Clone, Debug)]
pub struct PartitionController {
    crit_stalls: u64,
    noncrit_stalls: u64,
    threshold: u64,
    step: usize,
}

impl PartitionController {
    /// Creates a controller with the given stall-difference `threshold`
    /// (cycles) and resize `step` (entries).
    pub fn new(threshold: u64, step: usize) -> PartitionController {
        PartitionController {
            crit_stalls: 0,
            noncrit_stalls: 0,
            threshold,
            step,
        }
    }

    /// The resize step in entries.
    pub fn step(&self) -> usize {
        self.step
    }

    /// Records one cycle in which the structure's `critical` (or
    /// non-critical) section caused a stall. Returns a resize decision when
    /// the imbalance crosses the threshold, resetting the counters.
    pub fn on_stall_cycle(&mut self, critical: bool) -> Option<Resize> {
        if critical {
            self.crit_stalls += 1;
        } else {
            self.noncrit_stalls += 1;
        }
        if self.crit_stalls > self.noncrit_stalls + self.threshold {
            self.reset();
            Some(Resize::GrowCritical)
        } else if self.noncrit_stalls > self.crit_stalls + self.threshold {
            self.reset();
            Some(Resize::GrowNonCritical)
        } else {
            None
        }
    }

    /// Clears both counters (also called when CDF mode ends).
    pub fn reset(&mut self) {
        self.crit_stalls = 0;
        self.noncrit_stalls = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_stalls_never_resize() {
        let mut pc = PartitionController::new(4, 8);
        for i in 0..100 {
            assert_eq!(pc.on_stall_cycle(i % 2 == 0), None);
        }
    }

    #[test]
    fn noncritical_pressure_grows_noncritical() {
        let mut pc = PartitionController::new(4, 2);
        let mut decision = None;
        for _ in 0..5 {
            decision = pc.on_stall_cycle(false);
        }
        assert_eq!(decision, Some(Resize::GrowNonCritical));
    }

    #[test]
    fn counters_reset_after_decision() {
        let mut pc = PartitionController::new(2, 8);
        for _ in 0..3 {
            pc.on_stall_cycle(true);
        }
        // Decision happened; a single opposite stall must not trigger.
        assert_eq!(pc.on_stall_cycle(false), None);
        assert_eq!(pc.on_stall_cycle(false), None);
        assert_eq!(pc.on_stall_cycle(false), Some(Resize::GrowNonCritical));
    }

    #[test]
    fn threshold_is_strict() {
        let mut pc = PartitionController::new(4, 8);
        for _ in 0..4 {
            assert_eq!(pc.on_stall_cycle(true), None);
        }
        assert_eq!(pc.on_stall_cycle(true), Some(Resize::GrowCritical));
    }
}
