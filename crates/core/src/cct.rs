//! Critical Count Tables (§3.2, "Identifying Critical Loads").
//!
//! A small set-associative table with **two saturating counters per entry**:
//! a *strict* counter (long saturation, high threshold — marks fewer, sparser
//! critical instructions, letting CDF expand the effective window further)
//! and a *permissive* counter (lower threshold — better coverage). At
//! runtime the core measures the fraction of instructions marked critical
//! and flips to the permissive counters when too few loads are being marked.
//! Hard-to-predict branches are tracked in a second table of the same shape
//! with different thresholds.

use cdf_isa::Pc;

/// Tuning for a [`CriticalCountTable`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CctConfig {
    /// Number of sets (entries = sets × ways).
    pub sets: usize,
    /// Associativity (Table 1: 2-way, 64 entries total).
    pub ways: usize,
    /// Saturation maximum of the strict counter.
    pub strict_max: i32,
    /// Threshold at or above which the strict counter marks critical.
    pub strict_threshold: i32,
    /// Decrement applied to the strict counter on a non-qualifying event.
    pub strict_decay: i32,
    /// Saturation maximum of the permissive counter.
    pub permissive_max: i32,
    /// Threshold for the permissive counter.
    pub permissive_threshold: i32,
    /// Decrement for the permissive counter.
    pub permissive_decay: i32,
}

impl CctConfig {
    /// Defaults for the load table.
    pub fn loads() -> CctConfig {
        CctConfig {
            sets: 32,
            ways: 2,
            strict_max: 15,
            strict_threshold: 12,
            strict_decay: 2,
            permissive_max: 15,
            permissive_threshold: 4,
            permissive_decay: 1,
        }
    }

    /// Defaults for the hard-to-predict-branch table ("tracked similarly in
    /// a separate table and have different thresholds").
    pub fn branches() -> CctConfig {
        CctConfig {
            sets: 32,
            ways: 2,
            strict_max: 15,
            strict_threshold: 8,
            strict_decay: 1,
            permissive_max: 15,
            permissive_threshold: 3,
            permissive_decay: 1,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    tag: u64,
    strict: i32,
    permissive: i32,
    lru: u64,
}

/// One Critical Count Table. See the [module docs](self).
///
/// ```
/// use cdf_core::cct::{CctConfig, CriticalCountTable};
/// use cdf_isa::Pc;
///
/// let mut t = CriticalCountTable::new(CctConfig::loads());
/// let pc = Pc::new(12);
/// for _ in 0..16 {
///     t.update(pc, true); // the load keeps missing the LLC
/// }
/// assert!(t.is_critical(pc));
/// ```
#[derive(Clone, Debug)]
pub struct CriticalCountTable {
    cfg: CctConfig,
    entries: Vec<Option<Entry>>,
    use_permissive: bool,
    clock: u64,
}

impl CriticalCountTable {
    /// Creates a table.
    pub fn new(cfg: CctConfig) -> CriticalCountTable {
        CriticalCountTable {
            entries: vec![None; cfg.sets * cfg.ways],
            use_permissive: false,
            clock: 0,
            cfg,
        }
    }

    fn set_range(&self, pc: Pc) -> std::ops::Range<usize> {
        let set = pc.index() % self.cfg.sets;
        set * self.cfg.ways..(set + 1) * self.cfg.ways
    }

    /// Updates the counters for `pc` at retire time. `qualifies` is "missed
    /// the LLC" for loads or "was mispredicted" for branches. Allocates an
    /// entry (LRU victim) on the first qualifying event.
    pub fn update(&mut self, pc: Pc, qualifies: bool) {
        self.clock += 1;
        let clock = self.clock;
        let cfg = self.cfg;
        let range = self.set_range(pc);
        let ways = &mut self.entries[range];
        let tag = pc.index() as u64;
        if let Some(e) = ways.iter_mut().flatten().find(|e| e.tag == tag) {
            if qualifies {
                e.strict = (e.strict + 1).min(cfg.strict_max);
                e.permissive = (e.permissive + 1).min(cfg.permissive_max);
            } else {
                e.strict = (e.strict - cfg.strict_decay).max(0);
                e.permissive = (e.permissive - cfg.permissive_decay).max(0);
            }
            e.lru = clock;
            return;
        }
        if !qualifies {
            return; // never-qualifying instructions don't take an entry
        }
        // Allocate, evicting the LRU way if needed.
        let slot = ways
            .iter_mut()
            .min_by_key(|e| e.as_ref().map(|e| e.lru).unwrap_or(0))
            .expect("ways > 0");
        *slot = Some(Entry {
            tag,
            strict: 1,
            permissive: 1,
            lru: clock,
        });
    }

    /// Whether `pc` is currently predicted critical.
    pub fn is_critical(&self, pc: Pc) -> bool {
        let range = self.set_range(pc);
        let tag = pc.index() as u64;
        self.entries[range]
            .iter()
            .flatten()
            .find(|e| e.tag == tag)
            .map(|e| {
                if self.use_permissive {
                    e.permissive >= self.cfg.permissive_threshold
                } else {
                    e.strict >= self.cfg.strict_threshold
                }
            })
            .unwrap_or(false)
    }

    /// Switches between strict and permissive counters ("dynamically pick
    /// the more permissive counters for prediction if too few loads are
    /// marked critical").
    pub fn set_permissive(&mut self, permissive: bool) {
        self.use_permissive = permissive;
    }

    /// Whether the permissive counters are selected.
    pub fn is_permissive(&self) -> bool {
        self.use_permissive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CriticalCountTable {
        CriticalCountTable::new(CctConfig::loads())
    }

    #[test]
    fn strict_counter_needs_many_qualifying_events() {
        let mut t = table();
        let pc = Pc::new(4);
        for _ in 0..11 {
            t.update(pc, true);
        }
        assert!(!t.is_critical(pc), "strict threshold is 12");
        t.update(pc, true);
        assert!(t.is_critical(pc));
    }

    #[test]
    fn permissive_mode_marks_sooner() {
        let mut t = table();
        t.set_permissive(true);
        assert!(t.is_permissive());
        let pc = Pc::new(4);
        for _ in 0..4 {
            t.update(pc, true);
        }
        assert!(t.is_critical(pc), "permissive threshold is 4");
    }

    #[test]
    fn decay_on_non_qualifying_events() {
        let mut t = table();
        let pc = Pc::new(4);
        for _ in 0..15 {
            t.update(pc, true);
        }
        assert!(t.is_critical(pc));
        // Strict decays by 2 per hit: 15 -> below 12 after 2 hits.
        t.update(pc, false);
        t.update(pc, false);
        assert!(!t.is_critical(pc));
    }

    #[test]
    fn unknown_pc_not_critical() {
        let t = table();
        assert!(!t.is_critical(Pc::new(999)));
    }

    #[test]
    fn non_qualifying_never_allocates() {
        let mut t = table();
        for i in 0..100 {
            t.update(Pc::new(i), false);
        }
        for i in 0..100 {
            assert!(!t.is_critical(Pc::new(i)));
        }
    }

    #[test]
    fn lru_replacement_within_set() {
        let cfg = CctConfig {
            sets: 1,
            ways: 2,
            ..CctConfig::loads()
        };
        let mut t = CriticalCountTable::new(cfg);
        for _ in 0..15 {
            t.update(Pc::new(0), true);
            t.update(Pc::new(1), true);
        }
        assert!(t.is_critical(Pc::new(0)));
        // A third PC evicts the LRU entry (pc 0, older update).
        t.update(Pc::new(2), true);
        assert!(!t.is_critical(Pc::new(0)), "evicted");
        assert!(t.is_critical(Pc::new(1)), "survivor");
    }

    #[test]
    fn branch_config_thresholds_differ() {
        let b = CctConfig::branches();
        let l = CctConfig::loads();
        assert!(b.strict_threshold < l.strict_threshold);
    }
}
