//! Frontend plumbing: fetched-uop records, the decode pipeline, and the
//! critical instruction buffer.

use crate::types::{Seq, Stream};
use cdf_bpred::Prediction;
use cdf_isa::{Pc, StaticUop};
use std::collections::VecDeque;

/// A uop between fetch and rename.
#[derive(Clone, Debug)]
#[allow(dead_code)] // `stream` documents provenance; kept for debugging dumps
pub(crate) struct FetchedUop {
    pub seq: Seq,
    pub pc: Pc,
    pub uop: StaticUop,
    pub stream: Stream,
    /// Predictor state for conditional branches (attached to whichever copy
    /// will actually execute).
    pub pred: Option<Prediction>,
    pub pred_taken: bool,
    /// Fetched while CDF mode was active (recovery semantics, §3.6).
    pub fetched_in_cdf: bool,
    /// Regular-stream copy of a uop the critical stream also fetched; it is
    /// discarded at rename after its CMQ replay (§3.3 "The critical uops are
    /// discarded at the Rename stage").
    pub critical_dup: bool,
    /// Chain-provenance id of the CUC trace this uop was fetched from
    /// (0 for regular-stream uops and uops with no trace provenance).
    pub chain: u64,
}

/// A fixed-latency decode pipe: uops become visible to rename
/// `latency` cycles after fetch. Critical uops from the Critical Uop Cache
/// are already decoded and use a 1-cycle pipe instead (§3.3).
#[derive(Clone, Debug)]
pub(crate) struct DecodePipe {
    latency: u64,
    entries: VecDeque<(u64, FetchedUop)>,
    capacity: usize,
}

impl DecodePipe {
    pub fn new(latency: u64, capacity: usize) -> DecodePipe {
        DecodePipe {
            latency,
            entries: VecDeque::new(),
            capacity,
        }
    }

    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    #[cfg(test)]
    pub fn space(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Inserts a uop fetched at `now`.
    pub fn push(&mut self, now: u64, uop: FetchedUop) {
        debug_assert!(self.has_space());
        self.entries.push_back((now + self.latency, uop));
    }

    /// The head uop if it has finished decoding by `now`.
    pub fn front_ready(&self, now: u64) -> Option<&FetchedUop> {
        self.entries
            .front()
            .filter(|(ready, _)| *ready <= now)
            .map(|(_, u)| u)
    }

    /// Removes and returns the head uop (call after [`front_ready`]).
    pub fn pop(&mut self) -> Option<FetchedUop> {
        self.entries.pop_front().map(|(_, u)| u)
    }

    /// Drops and returns all uops younger than `target` (flush). The caller
    /// uses the removed branches' predictor checkpoints for history repair.
    pub fn flush_after(&mut self, target: Seq) -> Vec<FetchedUop> {
        let mut removed = Vec::new();
        self.entries.retain(|(_, u)| {
            if u.seq <= target {
                true
            } else {
                removed.push(u.clone());
                false
            }
        });
        removed
    }

    /// Drops everything.
    #[cfg(test)]
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uop(seq: u64) -> FetchedUop {
        FetchedUop {
            seq: Seq(seq),
            pc: Pc::new(0),
            uop: StaticUop::nop(),
            stream: Stream::Regular,
            pred: None,
            pred_taken: false,
            fetched_in_cdf: false,
            critical_dup: false,
            chain: 0,
        }
    }

    #[test]
    fn latency_gates_visibility() {
        let mut p = DecodePipe::new(3, 8);
        p.push(10, uop(1));
        assert!(p.front_ready(12).is_none());
        assert!(p.front_ready(13).is_some());
        assert_eq!(p.pop().unwrap().seq, Seq(1));
        assert!(p.pop().is_none());
    }

    #[test]
    fn capacity_limits() {
        let mut p = DecodePipe::new(1, 2);
        p.push(0, uop(1));
        assert_eq!(p.space(), 1);
        p.push(0, uop(2));
        assert!(!p.has_space());
    }

    #[test]
    fn fifo_order_preserved() {
        let mut p = DecodePipe::new(0, 8);
        for i in 1..=4 {
            p.push(0, uop(i));
        }
        for i in 1..=4 {
            assert_eq!(p.front_ready(0).unwrap().seq, Seq(i));
            p.pop();
        }
    }

    #[test]
    fn flush_drops_young() {
        let mut p = DecodePipe::new(0, 8);
        for i in 1..=4 {
            p.push(0, uop(i));
        }
        p.flush_after(Seq(2));
        assert_eq!(p.len(), 2);
        p.clear();
        assert_eq!(p.len(), 0);
    }
}
