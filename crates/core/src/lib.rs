//! # cdf-core — the out-of-order core and the CDF mechanism
//!
//! This crate is the paper's primary contribution rebuilt in Rust: an
//! execution-driven, cycle-level out-of-order core (fetch → decode → rename →
//! issue → execute → retire, with a ROB, reservation stations, load/store
//! queues, a physical register file, TAGE-SC-L branch prediction from
//! `cdf-bpred` and the memory hierarchy from `cdf-mem`) plus the complete
//! **Criticality Driven Fetch** machinery of §3:
//!
//! * [`cct`] — Critical Count Tables: dual saturating counters per load (and
//!   a separate table for hard-to-predict branches), updated at retire;
//! * [`fill_buffer`] — the 1024-entry retired-uop FIFO and the backwards
//!   dataflow walk that marks dependence chains (Fig. 5);
//! * [`mask_cache`] — per-basic-block criticality masks merged across control
//!   flow paths, periodically reset;
//! * [`uop_cache`] — the Critical Uop Cache holding decoded critical-uop
//!   traces tagged by basic-block start (Fig. 7);
//! * the CDF frontend (critical next-PC logic + Delayed Branch Queue), the
//!   critical rename stage (critical RAT + Critical Map Queue + poison-bit
//!   dependence-violation detection, Figs. 9–11), and dynamic ROB/LQ/SQ
//!   partitioning ([`partition`]);
//! * [`pre`] — the Precise Runahead comparator, implemented per the paper's
//!   §4.1 methodology (same marking/fetch machinery; loads marked critical
//!   only when they cause full-window stalls; chains run on free RS/PRF
//!   entries during the stall).
//!
//! The public entry point is [`Core`]: construct it with a [`CoreConfig`]
//! (whose default mirrors Table 1) over any `cdf-isa` program, call
//! [`Core::run`], and read [`CoreStats`]. Architectural correctness is
//! enforced by construction — integration tests compare every retired
//! register/memory state against the functional executor.
//!
//! ```
//! use cdf_core::{Core, CoreConfig, CoreMode};
//! use cdf_isa::{ProgramBuilder, ArchReg::*, MemoryImage};
//!
//! # fn main() -> Result<(), cdf_isa::BuildError> {
//! let mut b = ProgramBuilder::new();
//! b.movi(R1, 100);
//! let top = b.label("top");
//! b.bind(top)?;
//! b.addi(R2, R2, 7);
//! b.addi(R1, R1, -1);
//! b.brnz(R1, top);
//! b.halt();
//! let program = b.build()?;
//!
//! let mut core = Core::new(&program, MemoryImage::new(), CoreConfig::default());
//! let stats = core.run(100_000);
//! assert!(stats.halted);
//! assert_eq!(core.arch_state().reg(R2), 700);
//! assert!(stats.ipc() > 1.0, "simple loop should exceed 1 IPC");
//! # let _ = CoreMode::Baseline;
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cct;
pub mod diag;
pub mod fill_buffer;
pub mod grid;
pub mod mask_cache;
pub mod memport;
pub mod multicore;
pub mod observer;
pub mod partition;
pub mod pre;
pub mod prof;
pub mod provenance;
pub mod static_chains;
pub mod telemetry;
pub mod trace;
pub mod uop_cache;

mod cdf_engine;
mod config;
mod core_impl;
mod frontend;
mod lsq;
mod regfile;
mod rob;
mod rs;
mod sched;
mod stats;
mod types;

pub use cdf_mem::{CoreShareStats, DramStats, MemModelKind, MultiCoreMemory, SharedMemConfig};
pub use config::{
    BoundaryKind, CdfConfig, CoreConfig, CoreMode, ExecPorts, PreConfig, SchedulerKind,
};
pub use core_impl::Core;
pub use diag::{
    CdfDiagnostics, ChainRecord, Coverage, DiagConfig, DiagIntervalSample, DiagIntervalSeries,
    MAX_CHAIN_RECORDS,
};
pub use grid::{ConfigGrid, ConfigPoint};
pub use memport::{MemReqKind, MemRequest, MemResponse, MemSide, MemView, MessagePort};
pub use multicore::{CoreOutcome, MultiCore, SharedStatsReport};
pub use prof::{
    CountingAlloc, HostProf, HostProfile, Stage, StageSample, Subsystem, SubsystemSample,
};
pub use provenance::Provenance;

pub use observer::{
    Divergence, DivergenceKind, LockstepLog, OracleLockstep, RetireObserver, RetiredUop,
};
pub use stats::{CoreStats, RobMix};
pub use telemetry::{
    CycleAccounting, CycleBucket, EventPhase, Histogram, IntervalSample, IntervalSeries,
    OccupancyHistograms, OccupancySample, Telemetry, TelemetryConfig, TraceEvent,
};
pub use types::{PhysReg, Seq};
