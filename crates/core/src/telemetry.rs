//! Cycle-accounting telemetry: interval time series, occupancy histograms,
//! top-down cycle attribution, and a structured event sink.
//!
//! The simulator's end-of-run [`CoreStats`](crate::CoreStats) aggregates say
//! *how much* happened; this module says *when*. Four collectors, all owned
//! by one [`Telemetry`] value attached to a core via
//! [`Core::enable_telemetry`](crate::Core::enable_telemetry):
//!
//! * [`IntervalSeries`] — every `interval` cycles the core snapshots the
//!   delta of its key counters (retired, fetched, flushes, CDF residency,
//!   stall cycles, MLP sums) into a ring-buffered time series. Evicted
//!   samples fold into a running total, so the invariant *sum of deltas ==
//!   end-of-run aggregates* holds at any ring capacity (property-tested).
//! * [`Histogram`] ×5 — per-cycle ROB/LQ/SQ/RS/MSHR occupancies, binned
//!   into log₂ buckets so a sample costs one increment.
//! * [`CycleAccounting`] — every simulated cycle lands in exactly one of six
//!   buckets (see [`CycleBucket`]); the buckets always sum to the number of
//!   cycles telemetry observed.
//! * an event sink — CDF-mode episodes, full-window-stall episodes, flush
//!   instants, and (when a [`PipeTrace`](crate::trace::PipeTrace) is live)
//!   per-stage uop slices, as [`TraceEvent`]s that `cdf-sim` serializes into
//!   Chrome/Perfetto trace-event JSON.
//!
//! **Overhead guarantee**: everything here hangs off an
//! `Option<Telemetry>` inside the core. A disabled run executes zero
//! telemetry code on the cycle path and produces bit-identical `CoreStats`
//! to a build without this module (enforced by tests in `cdf-sim`). An
//! enabled run also leaves `CoreStats` untouched — telemetry only ever
//! *reads* the architectural simulation.

use crate::stats::CoreStats;
use std::collections::VecDeque;

/// Sizing and feature switches for one [`Telemetry`] instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TelemetryConfig {
    /// Cycles per interval sample (the sampler also flushes a final partial
    /// interval when a run window ends, so deltas always sum to the
    /// aggregates).
    pub interval: u64,
    /// Interval samples retained in the ring; older samples fold into the
    /// running totals.
    pub ring_capacity: usize,
    /// Maximum events kept by the sink; once full, further events are
    /// counted in [`Telemetry::events_dropped`] instead of stored.
    pub max_events: usize,
    /// Emit per-stage uop slices for the first N retired sequence numbers
    /// (requires the core's pipe trace; `0` disables uop slices).
    pub uop_events: u64,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            interval: 1024,
            ring_capacity: 512,
            max_events: 65_536,
            uop_events: 256,
        }
    }
}

// ---------------------------------------------------------------------------
// Cycle accounting.
// ---------------------------------------------------------------------------

/// Where one simulated cycle went. Every observed cycle is attributed to
/// exactly one bucket, by the first matching rule in this order:
///
/// 1. [`Retiring`](CycleBucket::Retiring) — at least one uop retired.
/// 2. [`FlushRecovery`](CycleBucket::FlushRecovery) — no retirement, and the
///    core is within `redirect_penalty` cycles of applying a pipeline flush.
/// 3. [`FullWindowStall`](CycleBucket::FullWindowStall) — no retirement and
///    the paper's full-window-stall condition held (rename blocked by a full
///    backend structure while the ROB head waits on memory).
/// 4. [`CdfMode`](CycleBucket::CdfMode) — no retirement, but CDF fetch mode
///    is engaged (the critical stream is running ahead).
/// 5. [`FrontendStarved`](CycleBucket::FrontendStarved) — no retirement and
///    the backend had nothing to chew on: the window is empty, or nothing
///    was dispatched because decode had no ready uop.
/// 6. [`BackendBound`](CycleBucket::BackendBound) — everything else: work is
///    in flight but the oldest uop is still executing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum CycleBucket {
    /// ≥1 uop retired this cycle.
    Retiring = 0,
    /// Draining/refilling after a mispredict, memory-order, or poison flush.
    FlushRecovery = 1,
    /// ROB full with the head load waiting on DRAM (the paper's target).
    FullWindowStall = 2,
    /// CDF fetch mode engaged without retirement (critical stream warming).
    CdfMode = 3,
    /// The backend was empty or rename had no decoded uop available.
    FrontendStarved = 4,
    /// Uops in flight, none ready to retire.
    BackendBound = 5,
}

impl CycleBucket {
    /// All buckets in attribution-priority order.
    pub const ALL: [CycleBucket; 6] = [
        CycleBucket::Retiring,
        CycleBucket::FlushRecovery,
        CycleBucket::FullWindowStall,
        CycleBucket::CdfMode,
        CycleBucket::FrontendStarved,
        CycleBucket::BackendBound,
    ];

    /// Stable snake_case label (used in JSON and tables).
    pub fn label(self) -> &'static str {
        match self {
            CycleBucket::Retiring => "retiring",
            CycleBucket::FlushRecovery => "flush_recovery",
            CycleBucket::FullWindowStall => "full_window_stall",
            CycleBucket::CdfMode => "cdf_mode",
            CycleBucket::FrontendStarved => "frontend_starved",
            CycleBucket::BackendBound => "backend_bound",
        }
    }
}

/// Top-down cycle attribution: six counters that always sum to the number
/// of cycles telemetry observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CycleAccounting {
    counts: [u64; 6],
}

impl CycleAccounting {
    /// Adds one cycle to `bucket`.
    #[inline]
    pub fn record(&mut self, bucket: CycleBucket) {
        self.counts[bucket as usize] += 1;
    }

    /// The cycle count of one bucket.
    pub fn get(&self, bucket: CycleBucket) -> u64 {
        self.counts[bucket as usize]
    }

    /// Total cycles attributed — equals the cycles telemetry observed.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(bucket, cycles, fraction)` rows in priority order; fractions sum to
    /// 1 (or are all 0 when no cycles were observed).
    pub fn breakdown(&self) -> Vec<(CycleBucket, u64, f64)> {
        let total = self.total();
        CycleBucket::ALL
            .iter()
            .map(|&b| {
                let c = self.get(b);
                let frac = if total == 0 {
                    0.0
                } else {
                    c as f64 / total as f64
                };
                (b, c, frac)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Occupancy histograms.
// ---------------------------------------------------------------------------

/// Number of log₂ buckets per histogram: bucket 0 holds the value 0, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)`; the last bucket also absorbs
/// everything larger.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// A log₂-bucketed occupancy histogram: one increment per sample, constant
/// space, exact counts and sum for the mean.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    samples: u64,
    sum: u64,
}

impl Histogram {
    /// The bucket index for `value`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// The inclusive value range `[lo, hi]` a bucket covers (the last bucket
    /// is open-ended and reports `u64::MAX`).
    pub fn bucket_range(index: usize) -> (u64, u64) {
        match index {
            0 => (0, 0),
            i if i >= HISTOGRAM_BUCKETS - 1 => (1 << (HISTOGRAM_BUCKETS - 2), u64::MAX),
            i => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.samples += 1;
        self.sum += value;
    }

    /// Samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// The raw bucket counters.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }
}

/// Per-cycle occupancy histograms of the core's queuing structures.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OccupancyHistograms {
    /// Reorder buffer entries in use.
    pub rob: Histogram,
    /// Load-queue entries in use.
    pub lq: Histogram,
    /// Store-queue entries in use.
    pub sq: Histogram,
    /// Reservation-station entries in use.
    pub rs: Histogram,
    /// Outstanding demand misses (L1D MSHRs with a miss in flight).
    pub mshr: Histogram,
}

impl OccupancyHistograms {
    /// `(name, histogram)` pairs in report order.
    pub fn named(&self) -> [(&'static str, &Histogram); 5] {
        [
            ("rob", &self.rob),
            ("lq", &self.lq),
            ("sq", &self.sq),
            ("rs", &self.rs),
            ("mshr", &self.mshr),
        ]
    }
}

/// One cycle's occupancy readings, taken by the core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OccupancySample {
    /// ROB entries in use.
    pub rob: u64,
    /// Load-queue entries in use.
    pub lq: u64,
    /// Store-queue entries in use.
    pub sq: u64,
    /// Reservation-station entries in use.
    pub rs: u64,
    /// Outstanding demand misses.
    pub mshr: u64,
}

// ---------------------------------------------------------------------------
// Interval sampler.
// ---------------------------------------------------------------------------

/// The counters the interval sampler tracks, as absolute values at one
/// point in time (taken from the live [`CoreStats`] plus the core clock).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct CounterSnapshot {
    cycles: u64,
    retired: u64,
    fetched_regular: u64,
    fetched_critical: u64,
    mispredicts: u64,
    memory_violations: u64,
    dependence_violations: u64,
    full_window_stall_cycles: u64,
    cdf_mode_cycles: u64,
    mlp_sum: u64,
    mlp_cycles: u64,
}

impl CounterSnapshot {
    fn take(now: u64, s: &CoreStats) -> CounterSnapshot {
        CounterSnapshot {
            cycles: now,
            retired: s.retired,
            fetched_regular: s.fetched_regular,
            fetched_critical: s.fetched_critical,
            mispredicts: s.mispredicts,
            memory_violations: s.memory_violations,
            dependence_violations: s.dependence_violations,
            full_window_stall_cycles: s.full_window_stall_cycles,
            cdf_mode_cycles: s.cdf_mode_cycles,
            mlp_sum: s.mlp_sum,
            mlp_cycles: s.mlp_cycles,
        }
    }
}

/// Delta-`CoreStats` over one sampling interval.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IntervalSample {
    /// First cycle covered (exclusive of the previous sample's end).
    pub start_cycle: u64,
    /// Last cycle covered.
    pub end_cycle: u64,
    /// Cycles in the interval (`end_cycle - start_cycle`).
    pub cycles: u64,
    /// Uops retired.
    pub retired: u64,
    /// Regular-stream uops fetched.
    pub fetched_regular: u64,
    /// Critical-stream uops fetched.
    pub fetched_critical: u64,
    /// Branch-mispredict flushes.
    pub mispredicts: u64,
    /// Memory-ordering flushes.
    pub memory_violations: u64,
    /// CDF poison (dependence) flushes.
    pub dependence_violations: u64,
    /// Full-window stall cycles.
    pub full_window_stall_cycles: u64,
    /// Cycles with CDF fetch mode engaged.
    pub cdf_mode_cycles: u64,
    /// Sum of outstanding demand misses over the interval (MLP numerator).
    pub mlp_sum: u64,
    /// Cycles with ≥1 outstanding demand miss (MLP denominator).
    pub mlp_cycles: u64,
}

impl IntervalSample {
    fn delta(prev: &CounterSnapshot, cur: &CounterSnapshot) -> IntervalSample {
        IntervalSample {
            start_cycle: prev.cycles,
            end_cycle: cur.cycles,
            cycles: cur.cycles - prev.cycles,
            retired: cur.retired - prev.retired,
            fetched_regular: cur.fetched_regular - prev.fetched_regular,
            fetched_critical: cur.fetched_critical - prev.fetched_critical,
            mispredicts: cur.mispredicts - prev.mispredicts,
            memory_violations: cur.memory_violations - prev.memory_violations,
            dependence_violations: cur.dependence_violations - prev.dependence_violations,
            full_window_stall_cycles: cur.full_window_stall_cycles - prev.full_window_stall_cycles,
            cdf_mode_cycles: cur.cdf_mode_cycles - prev.cdf_mode_cycles,
            mlp_sum: cur.mlp_sum - prev.mlp_sum,
            mlp_cycles: cur.mlp_cycles - prev.mlp_cycles,
        }
    }

    fn accumulate(&mut self, other: &IntervalSample) {
        if self.cycles == 0 {
            self.start_cycle = other.start_cycle;
        }
        self.end_cycle = other.end_cycle;
        self.cycles += other.cycles;
        self.retired += other.retired;
        self.fetched_regular += other.fetched_regular;
        self.fetched_critical += other.fetched_critical;
        self.mispredicts += other.mispredicts;
        self.memory_violations += other.memory_violations;
        self.dependence_violations += other.dependence_violations;
        self.full_window_stall_cycles += other.full_window_stall_cycles;
        self.cdf_mode_cycles += other.cdf_mode_cycles;
        self.mlp_sum += other.mlp_sum;
        self.mlp_cycles += other.mlp_cycles;
    }

    /// IPC over the interval.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// MLP proxy over the interval (mean outstanding demand misses while
    /// ≥1 outstanding).
    pub fn mlp(&self) -> f64 {
        if self.mlp_cycles == 0 {
            0.0
        } else {
            self.mlp_sum as f64 / self.mlp_cycles as f64
        }
    }

    /// Fraction of interval cycles spent with CDF fetch mode engaged.
    pub fn cdf_residency(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.cdf_mode_cycles as f64 / self.cycles as f64
        }
    }

    /// Flushes of all kinds in the interval.
    pub fn flushes(&self) -> u64 {
        self.mispredicts + self.memory_violations + self.dependence_violations
    }
}

/// The ring-buffered interval time series. Samples older than the ring
/// capacity are folded into [`totals`](Self::totals) rather than lost, so
/// the series always accounts for the whole run.
#[derive(Clone, PartialEq, Debug)]
pub struct IntervalSeries {
    ring: VecDeque<IntervalSample>,
    capacity: usize,
    evicted: IntervalSample,
    evicted_count: u64,
    last: CounterSnapshot,
}

impl IntervalSeries {
    fn new(capacity: usize) -> IntervalSeries {
        IntervalSeries {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            evicted: IntervalSample::default(),
            evicted_count: 0,
            last: CounterSnapshot::default(),
        }
    }

    fn sample(&mut self, now: u64, stats: &CoreStats) {
        let cur = CounterSnapshot::take(now, stats);
        let delta = IntervalSample::delta(&self.last, &cur);
        self.last = cur;
        if delta.cycles == 0 {
            return; // a zero-width flush (window boundary on an interval edge)
        }
        if self.ring.len() == self.capacity {
            let old = self.ring.pop_front().expect("ring non-empty at capacity");
            self.evicted.accumulate(&old);
            self.evicted_count += 1;
        }
        self.ring.push_back(delta);
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &IntervalSample> {
        self.ring.iter()
    }

    /// Retained sample count.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Samples evicted into the running totals.
    pub fn evicted_count(&self) -> u64 {
        self.evicted_count
    }

    /// Sum of **all** deltas since telemetry was enabled — evicted and
    /// retained. Equals the end-of-run aggregate deltas (property-tested).
    pub fn totals(&self) -> IntervalSample {
        let mut t = self.evicted;
        for s in &self.ring {
            t.accumulate(s);
        }
        t
    }
}

// ---------------------------------------------------------------------------
// Event sink.
// ---------------------------------------------------------------------------

/// The Chrome trace-event phase of a [`TraceEvent`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventPhase {
    /// `"B"` — duration begin.
    Begin,
    /// `"E"` — duration end.
    End,
    /// `"X"` — complete event with a duration.
    Complete,
    /// `"i"` — instant.
    Instant,
}

impl EventPhase {
    /// The phase letter Chrome/Perfetto expects.
    pub fn code(self) -> &'static str {
        match self {
            EventPhase::Begin => "B",
            EventPhase::End => "E",
            EventPhase::Complete => "X",
            EventPhase::Instant => "i",
        }
    }
}

/// One structured event. Timestamps are core cycles; `cdf-sim` maps them
/// 1:1 onto trace microseconds when serializing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Event name (e.g. `cdf_mode`, `full_window_stall`, `execute`).
    pub name: &'static str,
    /// Category: `mode`, `stall`, `flush`, or `uop`.
    pub cat: &'static str,
    /// Phase.
    pub ph: EventPhase,
    /// Start cycle.
    pub ts: u64,
    /// Duration in cycles ([`EventPhase::Complete`] only).
    pub dur: u64,
    /// Track id: 0 = episodes, 1 = flushes, 2+ = uop lanes.
    pub tid: u64,
    /// Optional `(key, value)` arguments (sequence numbers, PCs, …).
    pub args: Vec<(&'static str, u64)>,
}

// ---------------------------------------------------------------------------
// Telemetry root.
// ---------------------------------------------------------------------------

/// All telemetry collected over one core's run. See the [module
/// docs](self) for the guarantees.
#[derive(Clone, PartialEq, Debug)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    /// Top-down cycle attribution.
    pub accounting: CycleAccounting,
    /// Per-cycle structure occupancies.
    pub occupancy: OccupancyHistograms,
    /// The interval time series.
    pub intervals: IntervalSeries,
    events: Vec<TraceEvent>,
    events_dropped: u64,
    cdf_since: Option<u64>,
    stall_since: Option<u64>,
    observed_cycles: u64,
}

impl Telemetry {
    /// A fresh collector.
    pub fn new(cfg: TelemetryConfig) -> Telemetry {
        let ring = cfg.ring_capacity;
        Telemetry {
            cfg,
            accounting: CycleAccounting::default(),
            occupancy: OccupancyHistograms::default(),
            intervals: IntervalSeries::new(ring),
            events: Vec::new(),
            events_dropped: 0,
            cdf_since: None,
            stall_since: None,
            observed_cycles: 0,
        }
    }

    /// The configuration this collector was built with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Cycles observed (equals `accounting.total()` and the per-histogram
    /// sample counts).
    pub fn observed_cycles(&self) -> u64 {
        self.observed_cycles
    }

    /// The collected events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events discarded because the sink hit
    /// [`TelemetryConfig::max_events`].
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Whether per-stage uop slices are wanted for `seq`.
    pub fn wants_uop_events(&self, seq: u64) -> bool {
        seq < self.cfg.uop_events
    }

    /// Pushes an event, honouring the sink bound.
    pub fn push_event(&mut self, ev: TraceEvent) {
        if self.events.len() < self.cfg.max_events {
            self.events.push(ev);
        } else {
            self.events_dropped += 1;
        }
    }

    /// Called by the core once per cycle with the attribution decision and
    /// the occupancy readings.
    #[inline]
    pub fn on_cycle(&mut self, bucket: CycleBucket, occ: OccupancySample) {
        self.observed_cycles += 1;
        self.accounting.record(bucket);
        self.occupancy.rob.record(occ.rob);
        self.occupancy.lq.record(occ.lq);
        self.occupancy.sq.record(occ.sq);
        self.occupancy.rs.record(occ.rs);
        self.occupancy.mshr.record(occ.mshr);
    }

    /// Called by the core on interval boundaries (and at window ends via
    /// [`flush_window`](Self::flush_window)).
    pub fn sample_interval(&mut self, now: u64, stats: &CoreStats) {
        self.intervals.sample(now, stats);
    }

    /// Whether `now` lands on an interval boundary.
    #[inline]
    pub fn interval_due(&self, now: u64) -> bool {
        now.is_multiple_of(self.cfg.interval)
    }

    /// Tracks CDF-mode and full-window-stall episode transitions, emitting
    /// `B`/`E` event pairs.
    pub fn track_episodes(&mut self, now: u64, cdf_active: bool, stall_active: bool) {
        match (cdf_active, self.cdf_since) {
            (true, None) => {
                self.cdf_since = Some(now);
                self.push_event(TraceEvent {
                    name: "cdf_mode",
                    cat: "mode",
                    ph: EventPhase::Begin,
                    ts: now,
                    dur: 0,
                    tid: 0,
                    args: vec![],
                });
            }
            (false, Some(start)) => {
                self.cdf_since = None;
                self.push_event(TraceEvent {
                    name: "cdf_mode",
                    cat: "mode",
                    ph: EventPhase::End,
                    ts: now,
                    dur: 0,
                    tid: 0,
                    args: vec![("cycles", now - start)],
                });
            }
            _ => {}
        }
        match (stall_active, self.stall_since) {
            (true, None) => {
                self.stall_since = Some(now);
                self.push_event(TraceEvent {
                    name: "full_window_stall",
                    cat: "stall",
                    ph: EventPhase::Begin,
                    ts: now,
                    dur: 0,
                    tid: 1,
                    args: vec![],
                });
            }
            (false, Some(start)) => {
                self.stall_since = None;
                self.push_event(TraceEvent {
                    name: "full_window_stall",
                    cat: "stall",
                    ph: EventPhase::End,
                    ts: now,
                    dur: 0,
                    tid: 1,
                    args: vec![("cycles", now - start)],
                });
            }
            _ => {}
        }
    }

    /// Records a pipeline flush as an instant event.
    pub fn note_flush(&mut self, now: u64, kind: &'static str, target_seq: u64) {
        self.push_event(TraceEvent {
            name: kind,
            cat: "flush",
            ph: EventPhase::Instant,
            ts: now,
            dur: 0,
            tid: 1,
            args: vec![("seq", target_seq)],
        });
    }

    /// Emits per-stage `X` slices for one retired uop from its pipe-trace
    /// row. Stages with missing timestamps (e.g. a critical-stream uop that
    /// skipped regular fetch) are omitted.
    pub fn note_uop_retired(&mut self, seq: u64, pc: u64, row: &crate::trace::TraceRow) {
        let lane = 2 + (seq % 8);
        let stages: [(&'static str, Option<u64>, Option<u64>); 4] = [
            ("frontend", row.fetch, row.dispatch),
            ("queue", row.dispatch, row.execute),
            ("execute", row.execute, row.complete),
            ("commit", row.complete, row.retire),
        ];
        for (name, start, end) in stages {
            if let (Some(s), Some(e)) = (start, end) {
                self.push_event(TraceEvent {
                    name,
                    cat: "uop",
                    ph: EventPhase::Complete,
                    ts: s,
                    dur: e.saturating_sub(s).max(1),
                    tid: lane,
                    args: vec![("seq", seq), ("pc", pc), ("critical", row.critical as u64)],
                });
            }
        }
    }

    /// Ends a run window: flushes the partial interval so the series sums
    /// to the aggregates, and closes any open episode so the event stream
    /// is balanced. Called by the core when `run_bounded` returns; safe to
    /// call repeatedly (resumed runs re-open episodes on the next cycle).
    pub fn flush_window(&mut self, now: u64, stats: &CoreStats) {
        self.sample_interval(now, stats);
        let (cdf, stall) = (self.cdf_since.is_some(), self.stall_since.is_some());
        if cdf || stall {
            self.track_episodes(now, false, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_edges() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(8), 4);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Ranges agree with bucket_of at both edges.
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_range(i);
            assert_eq!(Histogram::bucket_of(lo), i, "lo edge of bucket {i}");
            if hi != u64::MAX {
                assert_eq!(Histogram::bucket_of(hi), i, "hi edge of bucket {i}");
            }
        }
    }

    #[test]
    fn histogram_counts_and_mean() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.samples(), 6);
        assert!((h.mean() - 110.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[2], 2); // 2 and 3
        assert_eq!(h.buckets()[Histogram::bucket_of(100)], 1);
    }

    #[test]
    fn accounting_is_total() {
        let mut a = CycleAccounting::default();
        a.record(CycleBucket::Retiring);
        a.record(CycleBucket::Retiring);
        a.record(CycleBucket::BackendBound);
        assert_eq!(a.total(), 3);
        let rows = a.breakdown();
        assert_eq!(rows.len(), 6);
        let frac_sum: f64 = rows.iter().map(|(_, _, f)| f).sum();
        assert!((frac_sum - 1.0).abs() < 1e-12);
        assert_eq!(rows[0].1, 2);
    }

    #[test]
    fn interval_ring_evicts_into_totals() {
        let mut t = Telemetry::new(TelemetryConfig {
            interval: 10,
            ring_capacity: 2,
            ..TelemetryConfig::default()
        });
        let mut stats = CoreStats::default();
        for i in 1..=5u64 {
            stats.retired += i; // distinct per-interval deltas
            t.sample_interval(i * 10, &stats);
        }
        assert_eq!(t.intervals.len(), 2, "ring holds the newest two");
        assert_eq!(t.intervals.evicted_count(), 3);
        let totals = t.intervals.totals();
        assert_eq!(totals.cycles, 50);
        assert_eq!(totals.retired, 1 + 2 + 3 + 4 + 5);
        assert_eq!(totals.start_cycle, 0);
        assert_eq!(totals.end_cycle, 50);
        // A window flush at a non-boundary cycle extends the totals exactly.
        stats.retired += 7;
        t.flush_window(53, &stats);
        assert_eq!(t.intervals.totals().cycles, 53);
        assert_eq!(t.intervals.totals().retired, 22);
        // Flushing again at the same cycle is a no-op (zero-width delta).
        t.flush_window(53, &stats);
        assert_eq!(t.intervals.totals().cycles, 53);
    }

    #[test]
    fn episode_tracking_emits_balanced_pairs() {
        let mut t = Telemetry::new(TelemetryConfig::default());
        t.track_episodes(5, true, false);
        t.track_episodes(6, true, true);
        t.track_episodes(9, false, true);
        t.track_episodes(12, false, false);
        let evs = t.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].name, "cdf_mode");
        assert_eq!(evs[0].ph, EventPhase::Begin);
        let end = evs
            .iter()
            .find(|e| e.name == "cdf_mode" && e.ph == EventPhase::End);
        assert_eq!(end.unwrap().args, vec![("cycles", 4)]);
        let stall_end = evs
            .iter()
            .find(|e| e.name == "full_window_stall" && e.ph == EventPhase::End)
            .unwrap();
        assert_eq!(stall_end.args, vec![("cycles", 6)]);
    }

    #[test]
    fn event_sink_is_bounded() {
        let mut t = Telemetry::new(TelemetryConfig {
            max_events: 2,
            ..TelemetryConfig::default()
        });
        for i in 0..5 {
            t.note_flush(i, "mispredict", i);
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events_dropped(), 3);
    }
}
