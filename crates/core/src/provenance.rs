//! Uniform run provenance: who produced a result, from what source, with
//! what toolchain, on what machine, when.
//!
//! Every serialized report in this repo (sweeps, equivalence campaigns, fuzz
//! campaigns, explain reports, durable result records, compare reports)
//! carries the same header so results taken months apart — possibly on
//! different machines — can still be compared honestly (the bar set by the
//! benchmark-initiative spec this repo's results store follows). The header
//! captures:
//!
//! * the git commit (and whether the worktree was dirty when the run
//!   happened — a dirty-tree result is not reproducible from the commit),
//! * the rustc version and host triple that built/ran the simulator,
//! * a wall-clock timestamp (unix seconds).
//!
//! Capture is best-effort: a missing `git` binary, a non-repo working
//! directory, or a clock before the epoch degrade the respective field to
//! `None` rather than failing the run. Each field has an environment
//! override (`CDF_GIT_COMMIT`, `CDF_GIT_DIRTY`, `CDF_RUSTC`, `CDF_HOST`,
//! `CDF_TIMESTAMP`) so tests and checked-in fixtures can pin stable values.

use std::process::Command;

/// The uniform provenance header stamped on every serialized report.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Provenance {
    /// Full git commit hash of the worktree, if discoverable.
    pub git_commit: Option<String>,
    /// Whether the worktree had uncommitted changes (`None` when git state
    /// could not be queried at all).
    pub git_dirty: Option<bool>,
    /// `rustc --version` of the toolchain on `PATH`, if discoverable.
    pub rustc_version: Option<String>,
    /// Host triple the run executed on (from `rustc -vV`, falling back to
    /// `arch-os` from `std::env::consts`).
    pub host: String,
    /// Unix timestamp (seconds) the provenance was captured at.
    pub timestamp: Option<u64>,
}

impl Provenance {
    /// Captures the current provenance. Shells out to `git` and `rustc`
    /// (both best-effort); honors the `CDF_*` environment overrides
    /// documented on the module.
    pub fn capture() -> Provenance {
        let (git_commit, git_dirty) = git_state();
        let (rustc_version, rustc_host) = rustc_state();
        let host = match std::env::var("CDF_HOST") {
            Ok(h) if !h.is_empty() => h,
            _ => rustc_host
                .unwrap_or_else(|| format!("{}-{}", std::env::consts::ARCH, std::env::consts::OS)),
        };
        Provenance {
            git_commit,
            git_dirty,
            rustc_version,
            host,
            timestamp: timestamp(),
        }
    }

    /// The first `n` characters of the commit hash (the whole hash if it is
    /// shorter), or `"unknown"` when no commit was captured.
    pub fn short_commit(&self, n: usize) -> String {
        match &self.git_commit {
            Some(c) => c.chars().take(n).collect(),
            None => "unknown".to_string(),
        }
    }
}

fn git_state() -> (Option<String>, Option<bool>) {
    // Test/fixture override: CDF_GIT_COMMIT pins the commit (empty disables
    // capture entirely), CDF_GIT_DIRTY pins the dirty flag ("1"/"0").
    let commit = match std::env::var("CDF_GIT_COMMIT") {
        Ok(c) => {
            if c.is_empty() {
                None
            } else {
                Some(c)
            }
        }
        Err(_) => run_trimmed("git", &["rev-parse", "HEAD"]),
    };
    let dirty = match std::env::var("CDF_GIT_DIRTY") {
        Ok(d) => match d.as_str() {
            "1" | "true" => Some(true),
            "0" | "false" => Some(false),
            _ => None,
        },
        Err(_) => {
            if commit.is_some() {
                run_trimmed("git", &["status", "--porcelain"]).map(|out| !out.is_empty())
            } else {
                None
            }
        }
    };
    (commit, dirty)
}

/// (`rustc --version` line, host triple) from one `rustc -vV` invocation.
fn rustc_state() -> (Option<String>, Option<String>) {
    if let Ok(v) = std::env::var("CDF_RUSTC") {
        let v = if v.is_empty() { None } else { Some(v) };
        return (v, None);
    }
    let Some(out) = run_trimmed("rustc", &["-vV"]) else {
        return (None, None);
    };
    let mut version = None;
    let mut host = None;
    for line in out.lines() {
        if line.starts_with("rustc ") && version.is_none() {
            version = Some(line.trim().to_string());
        }
        if let Some(h) = line.strip_prefix("host: ") {
            host = Some(h.trim().to_string());
        }
    }
    (version, host)
}

fn timestamp() -> Option<u64> {
    if let Ok(t) = std::env::var("CDF_TIMESTAMP") {
        return t.parse().ok();
    }
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .ok()
        .map(|d| d.as_secs())
}

fn run_trimmed(bin: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(bin).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    Some(String::from_utf8_lossy(&out.stdout).trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_commit_truncates_and_degrades() {
        let p = Provenance {
            git_commit: Some("deadbeefcafebabe".into()),
            ..Provenance::default()
        };
        assert_eq!(p.short_commit(8), "deadbeef");
        assert_eq!(Provenance::default().short_commit(8), "unknown");
    }
}
