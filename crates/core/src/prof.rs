//! Host-side self-profiling: where does the *simulator's* wall-clock go?
//!
//! The guest has had measurement discipline since PR 2 (cycle accounting,
//! chain provenance, durable result records); this module applies the same
//! discipline to the instrument itself. A [`HostProf`] is an optional
//! sidecar on [`Core`](crate::Core) — the exact pattern of
//! [`Telemetry`](crate::telemetry::Telemetry) and
//! [`CdfDiagnostics`](crate::diag::CdfDiagnostics) — that wraps each
//! pipeline stage of the per-cycle loop in a monotonic timer and counts
//! heap churn per stage through [`CountingAlloc`]. Subsystem boundaries
//! (scheduler wakeup/select, the MSHR/MLP completion heaps, the memport
//! envelope, the shared LLC) get their own timers, nested *inside* the
//! stage timers, so the stage rows alone answer the totality question.
//!
//! # Overhead guarantee
//!
//! A core without a profiler runs zero profiling code beyond one `Option`
//! null check per stage — the same standard the telemetry and diagnostics
//! sidecars are held to — and an enabled profiler only ever *reads*
//! simulation state, so [`CoreStats`](crate::CoreStats) are bit-identical
//! either way (enforced by `crates/sim/tests/prof.rs` across all seven
//! mechanisms).
//!
//! # Totality invariant
//!
//! Stage timers cover disjoint sub-intervals of the run loop, so their sum
//! is ≤ the wall time measured around the whole run; the remainder is
//! reported explicitly as `untracked_ns` (harness overhead, snapshotting,
//! the timers themselves) and is ≥ 0 by construction
//! ([`HostProf::into_profile`] uses saturating subtraction and a proptest
//! fuzzes the invariant over generated programs).

use cdf_mem::MemProfReport;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One pipeline stage of the per-cycle loop, in execution order
/// (backwards through the pipeline, like [`Core`](crate::Core) itself).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stage {
    /// In-order retirement (includes store commit into the memory system).
    Retire,
    /// Completion-event drain + register wakeup.
    Complete,
    /// Select + execute (issue ports, functional execution, load/store
    /// address generation and memory access).
    Schedule,
    /// Decode drain, rename, dispatch into ROB/RS/LSQ (covers the decode
    /// and rename stages of the modeled pipeline).
    Rename,
    /// Critical + regular instruction fetch, including I-cache access.
    Fetch,
    /// Pipeline flush recovery (replaces fetch on flush cycles).
    Flush,
    /// End-of-cycle bookkeeping (stall accounting, partition controllers,
    /// telemetry sampling).
    PostCycle,
}

impl Stage {
    /// Every stage, in per-cycle execution order.
    pub const ALL: [Stage; 7] = [
        Stage::Retire,
        Stage::Complete,
        Stage::Schedule,
        Stage::Rename,
        Stage::Fetch,
        Stage::Flush,
        Stage::PostCycle,
    ];

    /// Stable label used in `cdf-profile/1` documents and tables.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Retire => "retire",
            Stage::Complete => "complete",
            Stage::Schedule => "schedule_execute",
            Stage::Rename => "rename_dispatch",
            Stage::Fetch => "fetch",
            Stage::Flush => "flush",
            Stage::PostCycle => "post_cycle",
        }
    }
}

/// A subsystem boundary timed *inside* the stages (never added to the
/// stage totality sum — subsystem time is a refinement, not a partition).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Subsystem {
    /// Event-driven scheduler wakeup (waiter drain + ready enqueue).
    SchedWake,
    /// Event-driven scheduler select loop.
    SchedSelect,
    /// The core↔memory boundary envelope (demand accesses, runahead
    /// prefetches, MLP samples through [`MemSide`](crate::MemSide)).
    MemPort,
    /// MSHR completion-heap operations (from `cdf-mem`).
    MshrHeap,
    /// MLP outstanding-miss heap operations (from `cdf-mem`).
    MlpHeap,
    /// Shared-LLC accesses of a multi-core memory system (from `cdf-mem`).
    SharedLlc,
}

impl Subsystem {
    /// Every subsystem, in report order.
    pub const ALL: [Subsystem; 6] = [
        Subsystem::SchedWake,
        Subsystem::SchedSelect,
        Subsystem::MemPort,
        Subsystem::MshrHeap,
        Subsystem::MlpHeap,
        Subsystem::SharedLlc,
    ];

    /// Stable label used in `cdf-profile/1` documents and tables.
    pub fn label(self) -> &'static str {
        match self {
            Subsystem::SchedWake => "sched_wake",
            Subsystem::SchedSelect => "sched_select",
            Subsystem::MemPort => "memport",
            Subsystem::MshrHeap => "mshr_heap",
            Subsystem::MlpHeap => "mlp_heap",
            Subsystem::SharedLlc => "shared_llc",
        }
    }
}

// ---------------------------------------------------------------------
// Counting allocator.
// ---------------------------------------------------------------------

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator: two relaxed atomic
/// increments per allocation, so per-stage heap churn can be attributed by
/// snapshotting [`alloc_counts`] at stage boundaries.
///
/// Install it in a *binary* (`cdf-sim` and the throughput gate do):
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: cdf_core::prof::CountingAlloc = cdf_core::prof::CountingAlloc;
/// ```
///
/// When it is not installed the counters simply stay zero and profiles
/// report no allocation data; nothing else changes.
#[derive(Debug, Default)]
pub struct CountingAlloc;

// SAFETY: delegates allocation verbatim to `System`; the only additional
// work is two relaxed counter increments, which touch no allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Cumulative `(allocation calls, allocated bytes)` since process start —
/// zero unless [`CountingAlloc`] is installed as the global allocator.
pub fn alloc_counts() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

// ---------------------------------------------------------------------
// Collection.
// ---------------------------------------------------------------------

/// A stage/subsystem timer started by [`HostProf::begin`] (monotonic clock
/// plus an allocation-counter snapshot).
#[derive(Debug)]
pub struct ProfToken {
    at: Instant,
    allocs: u64,
    alloc_bytes: u64,
}

impl ProfToken {
    /// Starts a timer now.
    pub fn now() -> ProfToken {
        let (allocs, alloc_bytes) = alloc_counts();
        ProfToken {
            at: Instant::now(),
            allocs,
            alloc_bytes,
        }
    }
}

const STAGES: usize = Stage::ALL.len();
const SUBS: usize = Subsystem::ALL.len();

/// The live collector: per-stage wall-clock, call counts and heap churn,
/// plus per-subsystem wall-clock and operation counts. Attached to a core
/// via [`Core::enable_prof`](crate::Core::enable_prof) and drained by
/// [`Core::take_profile`](crate::Core::take_profile).
#[derive(Clone, Debug, Default)]
pub struct HostProf {
    stage_ns: [u64; STAGES],
    stage_calls: [u64; STAGES],
    stage_allocs: [u64; STAGES],
    stage_alloc_bytes: [u64; STAGES],
    sub_ns: [u64; SUBS],
    sub_ops: [u64; SUBS],
}

impl HostProf {
    /// A fresh collector.
    pub fn new() -> HostProf {
        HostProf::default()
    }

    /// Starts a timer (alias for [`ProfToken::now`], reads nicely at call
    /// sites).
    pub fn begin() -> ProfToken {
        ProfToken::now()
    }

    /// Closes a stage interval opened with [`begin`](Self::begin).
    pub fn end_stage(&mut self, stage: Stage, t: ProfToken) {
        let i = stage as usize;
        self.stage_ns[i] += t.at.elapsed().as_nanos() as u64;
        self.stage_calls[i] += 1;
        let (allocs, bytes) = alloc_counts();
        self.stage_allocs[i] += allocs - t.allocs;
        self.stage_alloc_bytes[i] += bytes - t.alloc_bytes;
    }

    /// Closes a subsystem interval opened with [`begin`](Self::begin).
    pub fn end_sub(&mut self, sub: Subsystem, t: ProfToken) {
        let i = sub as usize;
        self.sub_ns[i] += t.at.elapsed().as_nanos() as u64;
        self.sub_ops[i] += 1;
    }

    /// Folds externally-timed subsystem counters in (the `cdf-mem` heap
    /// timers report through [`MemProfReport`]).
    pub fn fold_mem(&mut self, mem: &MemProfReport) {
        self.sub_ns[Subsystem::MshrHeap as usize] += mem.mshr_ns;
        self.sub_ops[Subsystem::MshrHeap as usize] += mem.mshr_ops;
        self.sub_ns[Subsystem::MlpHeap as usize] += mem.mlp_ns;
        self.sub_ops[Subsystem::MlpHeap as usize] += mem.mlp_ops;
        self.sub_ns[Subsystem::SharedLlc as usize] += mem.shared_llc_ns;
        self.sub_ops[Subsystem::SharedLlc as usize] += mem.shared_llc_ops;
    }

    /// Merges another collector's counters into this one (the multi-core
    /// driver folds per-core collectors before finalizing: cores interleave
    /// on one host thread, so their intervals are disjoint in wall time).
    pub fn merge(&mut self, other: &HostProf) {
        for i in 0..STAGES {
            self.stage_ns[i] += other.stage_ns[i];
            self.stage_calls[i] += other.stage_calls[i];
            self.stage_allocs[i] += other.stage_allocs[i];
            self.stage_alloc_bytes[i] += other.stage_alloc_bytes[i];
        }
        for i in 0..SUBS {
            self.sub_ns[i] += other.sub_ns[i];
            self.sub_ops[i] += other.sub_ops[i];
        }
    }

    /// Finalizes into a [`HostProfile`]. `total_wall_ns` is the wall time
    /// the harness measured around the whole run; the untracked remainder
    /// is `total - Σ stages`, saturating so the totality invariant
    /// (`untracked ≥ 0`, `Σ stages ≤ total`) holds by construction.
    pub fn into_profile(self, cycles: u64, retired: u64, total_wall_ns: u64) -> HostProfile {
        let stages: Vec<StageSample> = Stage::ALL
            .iter()
            .map(|&s| {
                let i = s as usize;
                StageSample {
                    name: s.label().to_string(),
                    ns: self.stage_ns[i],
                    calls: self.stage_calls[i],
                    allocs: self.stage_allocs[i],
                    alloc_bytes: self.stage_alloc_bytes[i],
                }
            })
            .collect();
        let subsystems: Vec<SubsystemSample> = Subsystem::ALL
            .iter()
            .map(|&s| {
                let i = s as usize;
                SubsystemSample {
                    name: s.label().to_string(),
                    ns: self.sub_ns[i],
                    ops: self.sub_ops[i],
                }
            })
            .collect();
        let tracked: u64 = stages.iter().map(|s| s.ns).sum();
        HostProfile {
            cycles,
            retired,
            total_wall_ns: total_wall_ns.max(tracked),
            untracked_ns: total_wall_ns.saturating_sub(tracked),
            stages,
            subsystems,
        }
    }
}

// ---------------------------------------------------------------------
// The finished profile.
// ---------------------------------------------------------------------

/// One stage's aggregated host-side cost.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StageSample {
    /// Stable stage label ([`Stage::label`]).
    pub name: String,
    /// Wall-clock nanoseconds spent inside the stage.
    pub ns: u64,
    /// Times the stage ran (= cycles simulated while profiling).
    pub calls: u64,
    /// Heap allocations performed inside the stage (0 without
    /// [`CountingAlloc`]).
    pub allocs: u64,
    /// Bytes allocated inside the stage (0 without [`CountingAlloc`]).
    pub alloc_bytes: u64,
}

/// One subsystem's aggregated host-side cost.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SubsystemSample {
    /// Stable subsystem label ([`Subsystem::label`]).
    pub name: String,
    /// Wall-clock nanoseconds spent inside the subsystem.
    pub ns: u64,
    /// Operations timed.
    pub ops: u64,
}

/// A finished host profile: stage-level wall-clock attribution with the
/// totality invariant (`Σ stages + untracked = total`, both sides ≥ 0),
/// host throughput denominators, and the subsystem refinement.
#[derive(Clone, PartialEq, Debug)]
pub struct HostProfile {
    /// Guest cycles simulated while profiling.
    pub cycles: u64,
    /// Guest uops retired while profiling.
    pub retired: u64,
    /// Total wall-clock nanoseconds measured around the run (≥ Σ stages).
    pub total_wall_ns: u64,
    /// Wall time not attributed to any stage (harness overhead, the timers
    /// themselves). `total_wall_ns - Σ stages`, ≥ 0 by construction.
    pub untracked_ns: u64,
    /// Per-stage attribution, in per-cycle execution order.
    pub stages: Vec<StageSample>,
    /// Per-subsystem refinement (nested inside stages; not part of the
    /// totality sum).
    pub subsystems: Vec<SubsystemSample>,
}

impl HostProfile {
    /// Σ stage nanoseconds (the tracked portion of the wall).
    pub fn tracked_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.ns).sum()
    }

    /// Host simulation rate in guest cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.total_wall_ns == 0 {
            0.0
        } else {
            self.cycles as f64 * 1e9 / self.total_wall_ns as f64
        }
    }

    /// Host simulation rate in retired guest uops per wall-clock second —
    /// the ROADMAP's 10M uops/s target is stated in this unit.
    pub fn uops_per_sec(&self) -> f64 {
        if self.total_wall_ns == 0 {
            0.0
        } else {
            self.retired as f64 * 1e9 / self.total_wall_ns as f64
        }
    }

    /// Merges another profile into this one by summing every field —
    /// multi-core mixes fold their per-core profiles this way, which is
    /// sound because the round-robin driver interleaves cores on one host
    /// thread, so per-core stage intervals are disjoint in wall time.
    pub fn fold(&mut self, other: &HostProfile) {
        self.cycles += other.cycles;
        self.retired += other.retired;
        self.total_wall_ns += other.total_wall_ns;
        self.untracked_ns += other.untracked_ns;
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            debug_assert_eq!(a.name, b.name);
            a.ns += b.ns;
            a.calls += b.calls;
            a.allocs += b.allocs;
            a.alloc_bytes += b.alloc_bytes;
        }
        for (a, b) in self.subsystems.iter_mut().zip(&other.subsystems) {
            debug_assert_eq!(a.name, b.name);
            a.ns += b.ns;
            a.ops += b.ops;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_unique() {
        let mut seen = Vec::new();
        for s in Stage::ALL {
            assert!(!seen.contains(&s.label()), "duplicate {}", s.label());
            seen.push(s.label());
        }
        for s in Subsystem::ALL {
            assert!(!seen.contains(&s.label()), "duplicate {}", s.label());
            seen.push(s.label());
        }
    }

    #[test]
    fn totality_holds_by_construction() {
        let mut p = HostProf::new();
        let t = HostProf::begin();
        std::hint::black_box(0u64);
        p.end_stage(Stage::Retire, t);
        let t = HostProf::begin();
        p.end_sub(Subsystem::SchedWake, t);
        // A wall shorter than the tracked sum must clamp, never underflow.
        let tight = p.clone().into_profile(10, 5, 0);
        assert_eq!(tight.untracked_ns, 0);
        assert!(tight.total_wall_ns >= tight.tracked_ns());
        // A generous wall leaves the remainder as untracked.
        let wide = p.into_profile(10, 5, u64::MAX / 2);
        assert_eq!(
            wide.tracked_ns() + wide.untracked_ns,
            wide.total_wall_ns,
            "stages + untracked partition the wall"
        );
    }

    #[test]
    fn fold_sums_fields() {
        let mut a = HostProf::new();
        let t = HostProf::begin();
        a.end_stage(Stage::Fetch, t);
        let mut p1 = a.clone().into_profile(100, 50, 1_000_000);
        let p2 = a.into_profile(200, 70, 2_000_000);
        p1.fold(&p2);
        assert_eq!(p1.cycles, 300);
        assert_eq!(p1.retired, 120);
        assert_eq!(p1.total_wall_ns, 3_000_000);
        assert_eq!(p1.stages[4].calls, 2);
    }

    #[test]
    fn mem_report_folds_into_subsystems() {
        let mut p = HostProf::new();
        p.fold_mem(&MemProfReport {
            mshr_ns: 7,
            mshr_ops: 3,
            mlp_ns: 5,
            mlp_ops: 2,
            shared_llc_ns: 11,
            shared_llc_ops: 1,
        });
        let prof = p.into_profile(1, 1, 100);
        let get = |n: &str| {
            prof.subsystems
                .iter()
                .find(|s| s.name == n)
                .expect("present")
                .clone()
        };
        assert_eq!(get("mshr_heap").ns, 7);
        assert_eq!(get("mlp_heap").ops, 2);
        assert_eq!(get("shared_llc").ns, 11);
    }
}
