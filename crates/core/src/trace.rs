//! Pipeline tracing: per-uop stage timestamps and a text timeline renderer
//! (in the spirit of Konata/pipeview). Enabled per-core via
//! [`crate::Core::enable_trace`]; the overhead is a bounded table update per
//! pipeline event, zero when disabled.
//!
//! The rendering makes the CDF mechanism directly visible: critical-stream
//! uops (`*`) fetch and execute far before their program-order neighbours,
//! while their regular-stream duplicates are discarded at rename.

use crate::types::Seq;
use cdf_isa::Pc;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Stage timestamps of one traced uop (cycles; `None` = never reached).
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceRow {
    /// Fetched (regular stream) or read from the Critical Uop Cache.
    pub fetch: Option<u64>,
    /// Renamed/dispatched into the backend.
    pub dispatch: Option<u64>,
    /// Selected for execution.
    pub execute: Option<u64>,
    /// Result available.
    pub complete: Option<u64>,
    /// Retired.
    pub retire: Option<u64>,
    /// Issued via the critical stream.
    pub critical: bool,
    /// Times this sequence number was flushed and re-fetched.
    pub flushes: u32,
    /// The uop's PC (from the latest attempt).
    pub pc: Pc,
}

/// A bounded per-sequence-number trace of pipeline events.
///
/// The trace covers a *window* of sequence numbers `[base, base + span)`
/// (initially `[0, limit)`). [`rewindow`](Self::rewindow) slides the window
/// forward mid-run: rows that fall behind the new window are evicted, and a
/// sequence number that was previously rejected by [`row`](Self::row)
/// becomes recordable once the window reaches it — this is how tooling
/// traces a region of interest (say, the cycles around a CDF engagement)
/// instead of only the first N uops of the program.
#[derive(Clone, Debug)]
pub struct PipeTrace {
    rows: BTreeMap<u64, TraceRow>,
    /// First sequence number inside the window.
    base: u64,
    /// Window width in sequence numbers.
    span: u64,
}

impl PipeTrace {
    /// Traces the first `limit` sequence numbers (window `[0, limit)`).
    pub fn new(limit: u64) -> PipeTrace {
        PipeTrace {
            rows: BTreeMap::new(),
            base: 0,
            span: limit,
        }
    }

    /// The current window as `[start, end)` sequence numbers.
    pub fn window(&self) -> (u64, u64) {
        (self.base, self.base.saturating_add(self.span))
    }

    /// Slides the window to `[start, start + span)`, keeping the original
    /// width. Rows outside the new window are evicted; previously-rejected
    /// sequence numbers inside it become recordable. Retired rows inside
    /// the window survive untouched.
    pub fn rewindow(&mut self, start: u64) {
        self.base = start;
        let end = self.base.saturating_add(self.span);
        self.rows.retain(|&s, _| s >= start && s < end);
    }

    /// The mutable row for `seq` (created on first touch), or `None` when
    /// `seq` falls outside the current window. Public so tooling can
    /// re-window or synthesize traces for rendering.
    #[inline]
    pub fn row(&mut self, seq: Seq, pc: Pc) -> Option<&mut TraceRow> {
        if seq.0 < self.base || seq.0 - self.base >= self.span {
            return None;
        }
        let row = self.rows.entry(seq.0).or_default();
        row.pc = pc;
        Some(row)
    }

    pub(crate) fn note_flush(&mut self, after: Seq) {
        for (_, row) in self.rows.range_mut(after.0 + 1..) {
            if row.retire.is_none() {
                row.flushes += 1;
                // The next attempt overwrites stage timestamps.
                row.fetch = None;
                row.dispatch = None;
                row.execute = None;
                row.complete = None;
                row.critical = false;
            }
        }
    }

    /// The traced rows, oldest first.
    pub fn rows(&self) -> impl Iterator<Item = (Seq, &TraceRow)> {
        self.rows.iter().map(|(&s, r)| (Seq(s), r))
    }

    /// Renders a text timeline: one line per uop, one column per cycle
    /// (relative to the earliest traced event), stages marked
    /// `F`(etch) `D`(ispatch) `E`(xecute) `C`(omplete) `R`(etire), with `.`
    /// filling the span. Critical-stream uops are flagged with `*`.
    ///
    /// `max_cols` bounds the rendered width; later events are clipped.
    pub fn render(&self, max_cols: usize) -> String {
        let base = self
            .rows
            .values()
            .filter_map(|r| r.fetch)
            .min()
            .unwrap_or(0);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6} {:>6} c{:<6} timeline (cycles from {base})",
            "seq", "pc", "rit"
        );
        for (seq, row) in &self.rows {
            let marks: [(Option<u64>, char); 5] = [
                (row.fetch, 'F'),
                (row.dispatch, 'D'),
                (row.execute, 'E'),
                (row.complete, 'C'),
                (row.retire, 'R'),
            ];
            let mut lane = vec![b' '; max_cols];
            let mut first = usize::MAX;
            let mut last = 0usize;
            for (when, ch) in marks {
                if let Some(c) = when {
                    let col = (c.saturating_sub(base)) as usize;
                    if col < max_cols {
                        lane[col] = ch as u8;
                        first = first.min(col);
                        last = last.max(col);
                    }
                }
            }
            if first != usize::MAX {
                for slot in lane.iter_mut().take(last).skip(first) {
                    if *slot == b' ' {
                        *slot = b'.';
                    }
                }
            }
            let lane: String = String::from_utf8(lane)
                .expect("ascii")
                .trim_end()
                .to_string();
            let _ = writeln!(
                out,
                "{:>6} {:>6} {:^7} {}",
                seq,
                row.pc.to_string(),
                if row.critical { "*" } else { "" },
                lane
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_only_below_limit() {
        let mut t = PipeTrace::new(4);
        assert!(t.row(Seq(3), Pc::new(1)).is_some());
        assert!(t.row(Seq(4), Pc::new(1)).is_none());
        assert_eq!(t.rows().count(), 1);
    }

    #[test]
    fn limit_boundary_is_exclusive() {
        let mut t = PipeTrace::new(8);
        assert_eq!(t.window(), (0, 8));
        assert!(t.row(Seq(0), Pc::new(0)).is_some(), "window start included");
        assert!(t.row(Seq(7), Pc::new(0)).is_some(), "last in-window seq");
        assert!(t.row(Seq(8), Pc::new(0)).is_none(), "window end excluded");
        assert!(t.row(Seq(u64::MAX), Pc::new(0)).is_none());
        assert_eq!(t.rows().count(), 2);
    }

    #[test]
    fn rows_iterate_oldest_first() {
        let mut t = PipeTrace::new(16);
        for seq in [9u64, 2, 13, 5] {
            t.row(Seq(seq), Pc::new(seq as u32)).unwrap();
        }
        let order: Vec<u64> = t.rows().map(|(s, _)| s.0).collect();
        assert_eq!(order, vec![2, 5, 9, 13], "BTreeMap order == program order");
    }

    #[test]
    fn rewindow_recovers_evicted_seq_and_drops_stale_rows() {
        let mut t = PipeTrace::new(4);
        t.row(Seq(1), Pc::new(1)).unwrap().retire = Some(10);
        // Seq 6 is beyond the initial window: rejected (evicted-by-window).
        assert!(t.row(Seq(6), Pc::new(6)).is_none());
        t.rewindow(4);
        assert_eq!(t.window(), (4, 8));
        // The previously-rejected seq is now recordable...
        let r = t.row(Seq(6), Pc::new(6)).expect("inside the new window");
        r.fetch = Some(20);
        // ...rows behind the window are gone...
        assert!(t.rows().all(|(s, _)| s.0 >= 4), "stale rows evicted");
        // ...and window edges stay exclusive at the top.
        assert!(t.row(Seq(3), Pc::new(3)).is_none());
        assert!(t.row(Seq(8), Pc::new(8)).is_none());
        assert_eq!(t.rows().count(), 1);
    }

    #[test]
    fn flush_resets_unretired_rows() {
        let mut t = PipeTrace::new(8);
        {
            let r = t.row(Seq(2), Pc::new(0)).unwrap();
            r.fetch = Some(10);
            r.dispatch = Some(12);
        }
        {
            let r = t.row(Seq(1), Pc::new(0)).unwrap();
            r.fetch = Some(9);
            r.retire = Some(20);
        }
        t.note_flush(Seq(1));
        let rows: Vec<_> = t.rows().collect();
        let s2 = rows.iter().find(|(s, _)| *s == Seq(2)).unwrap().1;
        assert_eq!(s2.flushes, 1);
        assert_eq!(s2.fetch, None);
        let s1 = rows.iter().find(|(s, _)| *s == Seq(1)).unwrap().1;
        assert_eq!(s1.flushes, 0, "retired rows are immutable history");
        assert_eq!(s1.fetch, Some(9));
    }

    #[test]
    fn render_places_stage_letters() {
        let mut t = PipeTrace::new(4);
        {
            let r = t.row(Seq(1), Pc::new(7)).unwrap();
            r.fetch = Some(100);
            r.dispatch = Some(103);
            r.execute = Some(105);
            r.complete = Some(106);
            r.retire = Some(110);
            r.critical = true;
        }
        let text = t.render(40);
        let line = text.lines().nth(1).unwrap();
        assert!(line.contains('F') && line.contains('R'), "{line}");
        assert!(line.contains('*'), "critical flag: {line}");
        let f = line.find('F').unwrap();
        let r = line.rfind('R').unwrap();
        assert_eq!(r - f, 10, "R lands 10 cycles after F: {line}");
    }

    #[test]
    fn render_clips_to_width() {
        let mut t = PipeTrace::new(4);
        {
            let r = t.row(Seq(1), Pc::new(0)).unwrap();
            r.fetch = Some(0);
            r.retire = Some(10_000);
        }
        let text = t.render(32);
        assert!(text.lines().nth(1).unwrap().len() < 64);
    }
}
