//! Core-internal value types: sequence numbers, physical registers, dynamic
//! uops.

use cdf_bpred::Prediction;
use cdf_isa::{Pc, StaticUop};
use std::fmt;

/// A program-order sequence number — the paper's "timestamp".
///
/// Every dynamic uop gets a unique, monotonically increasing `Seq`. In CDF
/// mode the critical stream *skips* the numbers of the non-critical uops
/// between critical ones (the counts are known from the trace), and the
/// regular stream fills them in, so relative order between the two ROB
/// partitions is always a simple integer comparison (§3.3, "Assigning
/// Timestamps").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Seq(pub u64);

impl Seq {
    /// The next sequence number.
    #[must_use]
    pub fn next(self) -> Seq {
        Seq(self.0 + 1)
    }
}

impl fmt::Debug for Seq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for Seq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A physical register name.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg(pub u32);

impl fmt::Debug for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Execution status of an in-flight uop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum UopState {
    /// In the ROB/RS, sources not yet all ready or not yet selected.
    Waiting,
    /// Selected and executing; completes at the stored cycle.
    Executing { done_at: u64 },
    /// Result produced; eligible for retirement.
    Done,
}

/// Which fetch stream produced a uop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Stream {
    /// Regular (program-order) fetch.
    Regular,
    /// The CDF critical fetch (or PRE runahead fetch).
    Critical,
}

/// An in-flight dynamic uop. Lives in the core's instruction pool; ROB, RS
/// and LSQ refer to it by `Seq`.
#[derive(Clone, Debug)]
#[allow(dead_code)] // `stream` documents provenance; kept for debugging dumps
pub(crate) struct DynUop {
    pub seq: Seq,
    /// Unique dispatch id: distinguishes a uop from a later one that reuses
    /// the same sequence number after a flush (guards stale completions).
    pub uid: u64,
    pub pc: Pc,
    pub uop: StaticUop,
    /// Which stream issued it to the backend.
    pub stream: Stream,
    /// Occupies the critical partition of the backend structures.
    pub critical: bool,
    /// Renamed sources: role-indexed (see `src_roles`): for loads
    /// `[base, index, -]`, stores `[base, index, data]`, ALU/branches
    /// `[src1, src2, -]`.
    pub psrcs: [Option<PhysReg>; 3],
    /// Renamed destination.
    pub pdst: Option<PhysReg>,
    /// Previous mapping of the destination architectural register (freed at
    /// retire, reinstated on flush).
    pub prev_pdst: Option<PhysReg>,
    pub state: UopState,
    /// For conditional branches: the predictor state captured at predict
    /// time. `None` for branches that were never predicted (unconditional).
    pub pred: Option<Prediction>,
    /// Predicted direction (conditional branches).
    pub pred_taken: bool,
    /// Resolved direction, set at execute.
    pub taken: Option<bool>,
    /// Whether this uop was fetched while CDF mode was active (affects
    /// misprediction recovery, §3.6).
    pub fetched_in_cdf: bool,
    /// CDF dependence-chain id this uop was fetched under (0 = none):
    /// provenance carried through to retirement so equivalence divergence
    /// reports can name the chain.
    pub chain: u64,
    /// Effective address once computed (loads and stores).
    pub mem_addr: Option<u64>,
    /// Load value / ALU result / store data once known.
    pub result: Option<u64>,
    /// Loads: serviced by DRAM (used for CCT training at retire).
    pub llc_miss: bool,
    /// Loads: data obtained via store-to-load forwarding.
    pub forwarded: bool,
}

impl DynUop {
    pub fn new(seq: Seq, pc: Pc, uop: StaticUop, stream: Stream) -> DynUop {
        DynUop {
            seq,
            uid: 0,
            pc,
            uop,
            stream,
            critical: stream == Stream::Critical,
            psrcs: [None; 3],
            pdst: None,
            prev_pdst: None,
            state: UopState::Waiting,
            pred: None,
            pred_taken: false,
            taken: None,
            fetched_in_cdf: false,
            chain: 0,
            mem_addr: None,
            result: None,
            llc_miss: false,
            forwarded: false,
        }
    }

    pub fn is_done(&self) -> bool {
        self.state == UopState::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_ordering_and_display() {
        assert!(Seq(3) < Seq(4));
        assert_eq!(Seq(3).next(), Seq(4));
        assert_eq!(Seq(7).to_string(), "s7");
        assert_eq!(format!("{:?}", PhysReg(9)), "p9");
    }

    #[test]
    fn new_dynuop_defaults() {
        let u = DynUop::new(Seq(1), Pc::new(0), StaticUop::nop(), Stream::Regular);
        assert!(!u.critical);
        assert!(!u.is_done());
        let c = DynUop::new(Seq(2), Pc::new(0), StaticUop::nop(), Stream::Critical);
        assert!(c.critical);
    }
}

/// The in-flight instruction pool: a ring-indexed array keyed by sequence
/// number. Capacity comes from the configuration
/// (`CoreConfig::pool_slots()`): by default a power of two large enough that
/// the live sequence-number span — the critical-fetch runaway guard (8192)
/// plus the window and frontend buffers — can never alias two live uops.
/// With a smaller explicit capacity, rename consults [`can_insert`]
/// (InstrPool::can_insert) and backpressures instead of aliasing.
#[derive(Clone, Debug)]
pub(crate) struct InstrPool {
    slots: Vec<Option<DynUop>>,
    mask: usize,
    len: usize,
}

impl InstrPool {
    /// A pool of `slots` ring slots.
    ///
    /// # Panics
    ///
    /// Panics unless `slots` is a power of two (ring indexing is a mask).
    pub fn with_slots(slots: usize) -> InstrPool {
        assert!(
            slots.is_power_of_two(),
            "instruction pool capacity must be a power of two, got {slots}"
        );
        InstrPool {
            slots: vec![None; slots],
            mask: slots - 1,
            len: 0,
        }
    }

    #[inline]
    fn idx(&self, seq: u64) -> usize {
        (seq as usize) & self.mask
    }

    #[inline]
    pub fn get(&self, seq: u64) -> Option<&DynUop> {
        self.slots[self.idx(seq)]
            .as_ref()
            .filter(|u| u.seq.0 == seq)
    }

    #[inline]
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut DynUop> {
        let i = self.idx(seq);
        self.slots[i].as_mut().filter(|u| u.seq.0 == seq)
    }

    pub fn contains_key(&self, seq: u64) -> bool {
        self.get(seq).is_some()
    }

    /// Whether `seq` can be inserted without aliasing a different live uop —
    /// the rename-stage backpressure condition for small pools.
    #[inline]
    pub fn can_insert(&self, seq: u64) -> bool {
        self.slots[self.idx(seq)]
            .as_ref()
            .is_none_or(|u| u.seq.0 == seq)
    }

    /// Inserts a uop.
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied by a *different live* uop (rename
    /// gates on [`can_insert`](Self::can_insert); aliasing here is a
    /// correctness bug, not a capacity condition).
    pub fn insert(&mut self, seq: u64, uop: DynUop) {
        let i = self.idx(seq);
        let slot = &mut self.slots[i];
        if let Some(old) = slot {
            assert!(
                old.seq.0 == seq,
                "instruction pool ring aliasing: {} vs {seq}",
                old.seq.0
            );
        } else {
            self.len += 1;
        }
        *slot = Some(uop);
    }

    pub fn remove(&mut self, seq: u64) -> Option<DynUop> {
        let i = self.idx(seq);
        let slot = &mut self.slots[i];
        if slot.as_ref().map(|u| u.seq.0) == Some(seq) {
            self.len -= 1;
            slot.take()
        } else {
            None
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod pool_tests {
    use super::*;

    const SLOTS: u64 = 64;

    fn pool() -> InstrPool {
        InstrPool::with_slots(SLOTS as usize)
    }

    fn uop(seq: u64) -> DynUop {
        DynUop::new(Seq(seq), Pc::new(0), StaticUop::nop(), Stream::Regular)
    }

    #[test]
    fn insert_get_remove() {
        let mut p = pool();
        p.insert(5, uop(5));
        assert!(p.contains_key(5));
        assert_eq!(p.get(5).unwrap().seq, Seq(5));
        assert!(p.get(5 + SLOTS).is_none(), "aliased slot rejects");
        assert_eq!(p.len(), 1);
        assert_eq!(p.remove(5).unwrap().seq, Seq(5));
        assert!(p.remove(5).is_none());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn reinsert_same_seq_replaces() {
        let mut p = pool();
        p.insert(7, uop(7));
        let mut u = uop(7);
        u.uid = 99;
        p.insert(7, u);
        assert_eq!(p.get(7).unwrap().uid, 99);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn can_insert_reports_aliasing() {
        let mut p = pool();
        assert!(p.can_insert(3));
        p.insert(3, uop(3));
        assert!(p.can_insert(3), "same seq replaces, never aliases");
        assert!(!p.can_insert(3 + SLOTS), "live slot blocks the alias");
        assert!(p.can_insert(4));
        p.remove(3);
        assert!(p.can_insert(3 + SLOTS), "freed slot accepts again");
    }

    #[test]
    #[should_panic(expected = "aliasing")]
    fn aliasing_panics() {
        let mut p = pool();
        p.insert(1, uop(1));
        p.insert(1 + SLOTS, uop(1 + SLOTS));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_rejected() {
        InstrPool::with_slots(48);
    }
}
