//! Core configuration (defaults mirror the paper's Table 1).

use cdf_bpred::TageConfig;
use cdf_mem::{MemConfig, MemModelKind};

/// Execution-port counts per cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExecPorts {
    /// Integer ALU / branch ports.
    pub int: u32,
    /// FP-class ports.
    pub fp: u32,
    /// Load ports (AGU + D-cache).
    pub load: u32,
    /// Store ports.
    pub store: u32,
}

impl Default for ExecPorts {
    fn default() -> ExecPorts {
        ExecPorts {
            int: 4,
            fp: 2,
            load: 2,
            store: 1,
        }
    }
}

/// CDF structure parameters (Table 1's "CDF Caches" and "CDF FIFOs" rows,
/// plus §3's thresholds).
#[derive(Clone, PartialEq, Debug)]
pub struct CdfConfig {
    /// Fill Buffer capacity (1024).
    pub fill_buffer: usize,
    /// Retired instructions between walk triggers (10k).
    pub walk_period: u64,
    /// Cycles the trace-construction engine is busy per walk (~1200).
    pub walk_latency: u64,
    /// Instructions between Mask Cache resets (200k).
    pub mask_reset_period: u64,
    /// Mask Cache geometry.
    pub mask_sets: usize,
    /// Mask Cache associativity.
    pub mask_ways: usize,
    /// Critical Uop Cache sets.
    pub uop_cache_sets: usize,
    /// Critical Uop Cache 8-uop lines per set.
    pub uop_cache_lines_per_set: usize,
    /// Delayed Branch Queue capacity (256).
    pub dbq: usize,
    /// Critical Map Queue capacity (256).
    pub cmq: usize,
    /// Critical instruction buffer capacity (between uop-cache fetch and
    /// critical rename).
    pub crit_buffer: usize,
    /// Minimum marked fraction per walk; below this nothing is installed.
    /// The paper states 2% over its SPEC SimPoints; our synthetic kernels
    /// carry denser independent filler, so the calibrated default is 0.2%
    /// (recorded as a deviation in EXPERIMENTS.md — at 2% the guard would
    /// disable CDF on the far-apart-miss pattern §2.3 reports as a winner).
    pub min_density: f64,
    /// Maximum marked fraction per walk (50%).
    pub max_density: f64,
    /// Marked-fraction (of retired instructions) below which the CCTs flip
    /// to their permissive counters.
    pub permissive_below: f64,
    /// Stall-cycle imbalance threshold for dynamic partitioning (4).
    pub partition_threshold: u64,
    /// ROB/RS partition step (8).
    pub rob_step: usize,
    /// LQ/SQ partition step (2).
    pub lsq_step: usize,
    /// Initial fraction of each structure given to the critical section once
    /// CDF mode engages ("generally skewed towards a larger critical
    /// section").
    pub initial_critical_frac: f64,
    /// Mark hard-to-predict branches critical (§2.2; the ablation that drops
    /// geomean speedup from 6.1% to 3.8% turns this off).
    pub mark_branches: bool,
    /// Adjust partition sizes with the stall-counter controllers (§3.5).
    /// Off = static partitioning at `initial_critical_frac` (ablation).
    pub dynamic_partitioning: bool,
    /// Accumulate per-block masks across control-flow paths (§3.2). Off =
    /// each walk's marks are used alone (ablation: more dependence
    /// violations on alternating paths).
    pub use_mask_cache: bool,
    /// Apply the marked-density guards (§3.2). CDF uses them (it gains
    /// nothing from too-sparse or too-dense marking); PRE installs chains
    /// unconditionally — runahead has no density requirement.
    pub apply_density_guards: bool,
}

impl Default for CdfConfig {
    fn default() -> CdfConfig {
        CdfConfig {
            fill_buffer: 1024,
            walk_period: 10_000,
            walk_latency: 1200,
            mask_reset_period: 200_000,
            mask_sets: 64,
            mask_ways: 4,
            uop_cache_sets: 64,
            uop_cache_lines_per_set: 4,
            dbq: 256,
            cmq: 256,
            crit_buffer: 32,
            min_density: 0.002,
            max_density: 0.50,
            permissive_below: 0.05,
            partition_threshold: 4,
            rob_step: 8,
            lsq_step: 2,
            initial_critical_frac: 0.7,
            mark_branches: true,
            dynamic_partitioning: true,
            use_mask_cache: true,
            apply_density_guards: true,
        }
    }
}

/// Precise Runahead parameters (§4.1 methodology).
#[derive(Clone, PartialEq, Debug)]
pub struct PreConfig {
    /// The shared marking/trace machinery (loads are seeded only on
    /// full-window stalls; branch marking is disabled).
    pub cdf: CdfConfig,
    /// Maximum runahead uops issued per stall episode.
    pub max_runahead_uops: usize,
}

impl Default for PreConfig {
    fn default() -> PreConfig {
        PreConfig {
            cdf: CdfConfig {
                mark_branches: false,
                apply_density_guards: false,
                ..CdfConfig::default()
            },
            max_runahead_uops: 128,
        }
    }
}

/// Which wakeup/select implementation drives the schedule/execute stage.
///
/// Both produce **bit-identical** results — same `CoreStats`, same retired
/// stream, on every mechanism and workload (enforced by the golden-stats and
/// lockstep-equivalence suites in `cdf-sim`). The scan is kept selectable at
/// runtime, rather than compiled out, precisely so one process can run both
/// and compare.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// Event-driven wakeup/select: per-physical-register waiter lists wake
    /// exactly the dependents of a completing uop, and segregated
    /// critical/non-critical ready queues give oldest-first select with
    /// critical priority without per-cycle sorting. The default.
    #[default]
    EventDriven,
    /// The original per-cycle O(RS) scan over all reservation-station
    /// entries — slower, trivially correct, kept as the equivalence oracle.
    ReferenceScan,
}

impl SchedulerKind {
    /// Stable label used in serialized reports and result-store keys.
    pub fn as_str(self) -> &'static str {
        match self {
            SchedulerKind::EventDriven => "event",
            SchedulerKind::ReferenceScan => "scan",
        }
    }
}

/// Which implementation of the core↔memory boundary carries requests.
///
/// Like [`SchedulerKind`] and [`MemModelKind`], both variants are
/// **bit-identical** — same `CoreStats`, same retired stream, on every
/// mechanism and workload — and runtime-selectable so one process can run
/// both and compare (`cdf-sim equiv --boundary`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BoundaryKind {
    /// Tagged request/response messages through
    /// [`MessagePort`](crate::memport::MessagePort) — the envelope that
    /// lets N cores share a memory system. The default.
    #[default]
    RequestResponse,
    /// The original synchronous call into the private hierarchy, kept as
    /// the equivalence oracle.
    ReferenceDirect,
}

impl BoundaryKind {
    /// Stable label used in serialized reports and result-store keys.
    pub fn as_str(self) -> &'static str {
        match self {
            BoundaryKind::RequestResponse => "msg",
            BoundaryKind::ReferenceDirect => "direct",
        }
    }
}

/// Which mechanism the core runs.
#[derive(Clone, PartialEq, Debug, Default)]
pub enum CoreMode {
    /// The baseline OoO core (with prefetching).
    #[default]
    Baseline,
    /// Baseline timing, but with the CDF marking structures running in
    /// observe-only mode — used to measure the ROB criticality mix of Fig. 1
    /// without perturbing execution.
    BaselineClassify,
    /// Criticality Driven Fetch.
    Cdf(CdfConfig),
    /// Precise Runahead.
    Pre(PreConfig),
}

/// Full core configuration. `Default` reproduces Table 1:
/// 3.2 GHz, 6-wide, TAGE-SC-L, 352-entry ROB, 160 RS, 128 LQ, 72 SQ,
/// the 32KB/32KB/1MB cache hierarchy with a 64-stream FDP prefetcher, and
/// DDR4-2400 with 2 channels.
#[derive(Clone, PartialEq, Debug)]
pub struct CoreConfig {
    /// Uops fetched per cycle (6-wide).
    pub fetch_width: usize,
    /// Uops renamed/issued to the backend per cycle.
    pub rename_width: usize,
    /// Uops retired per cycle.
    pub retire_width: usize,
    /// Fetch-to-rename decode latency in cycles.
    pub decode_latency: u64,
    /// Extra cycles on a taken-branch redirect (misprediction penalty on top
    /// of pipeline refill).
    pub redirect_penalty: u64,
    /// Reorder buffer entries (352).
    pub rob: usize,
    /// Reservation station entries (160).
    pub rs: usize,
    /// Load queue entries (128).
    pub lq: usize,
    /// Store queue entries (72).
    pub sq: usize,
    /// Physical register file size.
    pub phys_regs: usize,
    /// Execution ports.
    pub ports: ExecPorts,
    /// Memory hierarchy configuration.
    pub mem: MemConfig,
    /// Outstanding-miss bookkeeping implementation (see
    /// [`MemModelKind`]). Like [`SchedulerKind`], both variants are
    /// bit-identical and runtime-selectable so one process can run both
    /// and compare (`cdf-sim equiv --mem`).
    pub mem_model: MemModelKind,
    /// Branch predictor configuration.
    pub tage: TageConfig,
    /// Byte address of the first uop (for I-cache indexing).
    pub code_base: u64,
    /// Mechanism selection.
    pub mode: CoreMode,
    /// Wakeup/select implementation (see [`SchedulerKind`]).
    pub scheduler: SchedulerKind,
    /// Core↔memory boundary implementation (see [`BoundaryKind`]).
    pub boundary: BoundaryKind,
    /// Instruction-pool ring capacity in slots, rounded up to a power of
    /// two. `0` (the default) sizes the pool automatically from the window:
    /// large enough that the live sequence-number span — the 8192-seq
    /// critical-fetch runaway guard plus the ROB and the frontend buffers —
    /// can never alias two in-flight uops. An explicit smaller value is
    /// honoured: rename backpressures when its sequence number would alias a
    /// live slot, instead of panicking.
    pub instr_pool_slots: usize,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig {
            fetch_width: 6,
            rename_width: 6,
            retire_width: 8,
            decode_latency: 3,
            redirect_penalty: 3,
            rob: 352,
            rs: 160,
            lq: 128,
            sq: 72,
            phys_regs: 512,
            ports: ExecPorts::default(),
            mem: MemConfig::default(),
            mem_model: MemModelKind::default(),
            tage: TageConfig::default(),
            code_base: 0x0040_0000,
            mode: CoreMode::Baseline,
            scheduler: SchedulerKind::default(),
            boundary: BoundaryKind::default(),
            instr_pool_slots: 0,
        }
    }
}

impl CoreConfig {
    /// A configuration with the window structures scaled by `rob / 352`
    /// ("other core structures are scaled proportionately", Fig. 17).
    #[must_use]
    pub fn with_scaled_window(mut self, rob: usize) -> CoreConfig {
        let ratio = rob as f64 / 352.0;
        self.rob = rob;
        self.rs = ((160.0 * ratio) as usize).max(16);
        self.lq = ((128.0 * ratio) as usize).max(16);
        self.sq = ((72.0 * ratio) as usize).max(8);
        self.phys_regs = ((512.0 * ratio) as usize).max(rob + 64);
        self
    }

    /// The instruction-pool ring capacity this configuration resolves to:
    /// [`instr_pool_slots`](Self::instr_pool_slots) rounded up to a power of
    /// two, or — when 0 — the smallest power of two covering the maximum
    /// live sequence-number span (the 8192-seq critical-fetch runaway guard
    /// plus the ROB and the frontend buffers).
    pub fn pool_slots(&self) -> usize {
        if self.instr_pool_slots > 0 {
            self.instr_pool_slots.next_power_of_two()
        } else {
            (8192 + self.rob + 512).next_power_of_two()
        }
    }

    /// The CDF configuration if the mode carries one.
    pub fn cdf_config(&self) -> Option<&CdfConfig> {
        match &self.mode {
            CoreMode::Cdf(c) => Some(c),
            CoreMode::Pre(p) => Some(&p.cdf),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = CoreConfig::default();
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.rob, 352);
        assert_eq!(c.rs, 160);
        assert_eq!(c.lq, 128);
        assert_eq!(c.sq, 72);
        assert_eq!(c.mem.l1_latency, 2);
        assert_eq!(c.mem.llc_latency, 18);
        assert_eq!(c.mode, CoreMode::Baseline);
    }

    #[test]
    fn scaled_window_proportional() {
        let c = CoreConfig::default().with_scaled_window(704);
        assert_eq!(c.rob, 704);
        assert_eq!(c.rs, 320);
        assert_eq!(c.lq, 256);
        assert_eq!(c.sq, 144);
        assert!(c.phys_regs >= 704 + 64);
    }

    #[test]
    fn cdf_config_accessor() {
        assert!(CoreConfig::default().cdf_config().is_none());
        let c = CoreConfig {
            mode: CoreMode::Cdf(CdfConfig::default()),
            ..CoreConfig::default()
        };
        assert!(c.cdf_config().is_some());
        let p = CoreConfig {
            mode: CoreMode::Pre(PreConfig::default()),
            ..CoreConfig::default()
        };
        assert!(
            !p.cdf_config().unwrap().mark_branches,
            "PRE marks only loads"
        );
    }

    #[test]
    fn scheduler_and_pool_defaults() {
        let c = CoreConfig::default();
        assert_eq!(c.scheduler, SchedulerKind::EventDriven);
        assert_eq!(c.mem_model, MemModelKind::EventDriven);
        assert_eq!(c.boundary, BoundaryKind::RequestResponse);
        assert_eq!(BoundaryKind::RequestResponse.as_str(), "msg");
        assert_eq!(BoundaryKind::ReferenceDirect.as_str(), "direct");
        assert_eq!(
            c.pool_slots(),
            16384,
            "Table 1 window resolves to the historical ring size"
        );
        let small = CoreConfig {
            instr_pool_slots: 48,
            ..CoreConfig::default()
        };
        assert_eq!(small.pool_slots(), 64, "explicit capacity rounds up");
        let big = CoreConfig::default().with_scaled_window(8192);
        assert!(
            big.pool_slots() > 8192 + 8192,
            "auto sizing tracks the window"
        );
    }

    #[test]
    fn default_cdf_thresholds_match_paper() {
        let c = CdfConfig::default();
        assert_eq!(c.fill_buffer, 1024);
        assert_eq!(c.walk_period, 10_000);
        assert_eq!(c.walk_latency, 1200);
        assert_eq!(c.mask_reset_period, 200_000);
        assert_eq!(c.dbq, 256);
        assert_eq!(c.cmq, 256);
        assert_eq!(c.partition_threshold, 4);
        assert_eq!(c.rob_step, 8);
        assert_eq!(c.lsq_step, 2);
        assert!((c.min_density - 0.002).abs() < 1e-9, "calibrated guard");
        assert!((c.max_density - 0.50).abs() < 1e-9);
    }
}
