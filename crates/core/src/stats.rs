//! Simulation statistics collected by the core.

/// ROB occupancy mix sampled during full-window stalls (Fig. 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RobMix {
    /// Samples taken (one per sampled full-window-stall cycle).
    pub samples: u64,
    /// Sum of ROB entries classified critical over all samples.
    pub critical: u64,
    /// Sum of ROB entries classified non-critical.
    pub non_critical: u64,
}

impl RobMix {
    /// Fraction of ROB occupancy that was critical during full-window
    /// stalls.
    pub fn critical_fraction(&self) -> f64 {
        let total = self.critical + self.non_critical;
        if total == 0 {
            0.0
        } else {
            self.critical as f64 / total as f64
        }
    }
}

/// Everything a simulation run reports.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Uops retired.
    pub retired: u64,
    /// The program executed its `Halt` (otherwise the instruction budget ran
    /// out first).
    pub halted: bool,
    /// Uops fetched by the regular stream.
    pub fetched_regular: u64,
    /// Uops fetched by the critical (CDF) stream.
    pub fetched_critical: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Conditional branches mispredicted (resolved-at-execute flushes).
    pub mispredicts: u64,
    /// Pipeline flushes due to memory-ordering violations.
    pub memory_violations: u64,
    /// Pipeline flushes due to CDF register dependence violations (poison).
    pub dependence_violations: u64,
    /// Cycles in which rename was blocked with the ROB full and the ROB head
    /// waiting on DRAM — the paper's full-window stalls.
    pub full_window_stall_cycles: u64,
    /// Full-window stall episodes (entries into a stall).
    pub full_window_stalls: u64,
    /// Cycles spent with CDF mode active.
    pub cdf_mode_cycles: u64,
    /// Times the core entered CDF mode.
    pub cdf_entries: u64,
    /// Uops issued to the backend via the critical stream.
    pub critical_uops_issued: u64,
    /// Backwards dataflow walks performed.
    pub walks: u64,
    /// Traces installed into the Critical Uop Cache.
    pub traces_installed: u64,
    /// Walks discarded by the <2%/>50% density guards.
    pub walks_dropped_by_density: u64,
    /// Runahead episodes (PRE).
    pub runahead_episodes: u64,
    /// Runahead uops executed (PRE).
    pub runahead_uops: u64,
    /// ROB criticality mix during full-window stalls (Fig. 1).
    pub rob_mix: RobMix,
    /// Sum over cycles of outstanding demand LLC misses (MLP numerator).
    pub mlp_sum: u64,
    /// Cycles with at least one outstanding demand LLC miss (MLP
    /// denominator).
    pub mlp_cycles: u64,
    /// Loads retired.
    pub loads_retired: u64,
    /// Retired loads that were serviced by DRAM.
    pub llc_miss_loads: u64,
}

impl CoreStats {
    /// Retired uops per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Branch mispredictions per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.mispredicts as f64 * 1000.0 / self.retired as f64
        }
    }

    /// Average outstanding demand LLC misses while at least one is
    /// outstanding — the MLP metric of Fig. 14.
    pub fn mlp(&self) -> f64 {
        if self.mlp_cycles == 0 {
            0.0
        } else {
            self.mlp_sum as f64 / self.mlp_cycles as f64
        }
    }

    /// LLC misses per kilo-instruction (retired demand loads only).
    pub fn llc_mpki(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.llc_miss_loads as f64 * 1000.0 / self.retired as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = CoreStats {
            cycles: 1000,
            retired: 2500,
            mispredicts: 5,
            mlp_sum: 600,
            mlp_cycles: 200,
            llc_miss_loads: 25,
            ..CoreStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.branch_mpki() - 2.0).abs() < 1e-12);
        assert!((s.mlp() - 3.0).abs() < 1e-12);
        assert!((s.llc_mpki() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.branch_mpki(), 0.0);
        assert_eq!(s.mlp(), 0.0);
        assert_eq!(s.rob_mix.critical_fraction(), 0.0);
    }

    #[test]
    fn rob_mix_fraction() {
        let m = RobMix {
            samples: 10,
            critical: 30,
            non_critical: 70,
        };
        assert!((m.critical_fraction() - 0.3).abs() < 1e-12);
    }
}
