//! The CDF trace-construction engine: CCTs → Fill Buffer → backwards walk →
//! Mask Cache → Critical Uop Cache, with the walk latency and periodic mask
//! reset modeled (§3.2).

use crate::cct::{CctConfig, CriticalCountTable};
use crate::config::CdfConfig;
use crate::diag::CdfDiagnostics;
use crate::fill_buffer::{FbEntry, FillBuffer};
use crate::mask_cache::MaskCache;
use crate::types::Seq;
use crate::uop_cache::{CriticalUopCache, Trace};
use cdf_bpred::Prediction;
use cdf_isa::{ArchReg, Pc};
use std::collections::VecDeque;

/// A Delayed Branch Queue entry: the direction/target produced when the
/// critical fetch logic predicted a block-ending branch, consumed in order
/// by the regular fetch stream (§3.3).
#[derive(Clone, Debug)]
pub(crate) struct DbqEntry {
    pub seq: Seq,
    pub taken: bool,
    /// Where fetch continues (target if taken, fall-through otherwise).
    pub next_pc: Pc,
    /// Predictor state (attached to the executing copy if the branch is not
    /// part of the critical stream).
    pub pred: Prediction,
}

/// A Critical Map Queue entry: the destination mapping produced by the
/// critical rename stage, replayed in program order by the regular rename
/// stage (§3.4).
#[derive(Clone, Copy, Debug)]
pub(crate) struct CmqEntry {
    pub seq: Seq,
    /// Destination architectural register (uops without one — stores,
    /// branches — still occupy a CMQ slot so the regular stream discards
    /// them).
    pub areg: Option<ArchReg>,
    pub pdst: Option<crate::types::PhysReg>,
    /// Chain-provenance id of the CUC trace this uop was fetched from
    /// (0 when no provenance is attached).
    pub chain: u64,
}

/// Counters the engine exposes for energy accounting.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct EngineActivity {
    pub cct_ops: u64,
    pub fill_pushes: u64,
    pub walk_steps: u64,
    pub mask_ops: u64,
    pub uop_cache_ops: u64,
}

/// The bundled CDF identification/storage machinery. The pipeline stages in
/// `Core` drive it; it never touches the pipeline itself.
#[derive(Clone, Debug)]
pub(crate) struct CdfEngine {
    pub cfg: CdfConfig,
    pub cct_loads: CriticalCountTable,
    pub cct_branches: CriticalCountTable,
    pub fill: FillBuffer,
    pub masks: MaskCache,
    pub traces: CriticalUopCache,
    pub dbq: VecDeque<DbqEntry>,
    pub cmq: VecDeque<CmqEntry>,
    pub activity: EngineActivity,
    /// The trace-construction engine is busy until this cycle.
    walk_busy_until: u64,
    /// Retired-instruction count at the last walk.
    last_walk_retired: u64,
    /// Retired-instruction count at the last mask reset.
    last_mask_reset: u64,
    /// Walk output awaiting installation (completes when the walk latency
    /// elapses).
    pending_install: Option<PendingInstall>,
    /// Next chain-provenance id to hand out (1-based; 0 = "no chain").
    next_chain: u64,
    pub walks: u64,
    pub walks_dropped: u64,
    pub traces_installed: u64,
}

/// A finished walk waiting out the trace-construction latency:
/// (install-at cycle, trace rows as `(pc, block length, mask, chain id)`).
type PendingInstall = (u64, Vec<(Pc, u32, u64, u64)>);

impl CdfEngine {
    pub fn new(cfg: CdfConfig) -> CdfEngine {
        CdfEngine {
            cct_loads: CriticalCountTable::new(CctConfig::loads()),
            cct_branches: CriticalCountTable::new(CctConfig::branches()),
            fill: FillBuffer::new(cfg.fill_buffer),
            masks: MaskCache::new(cfg.mask_sets, cfg.mask_ways),
            traces: CriticalUopCache::new(cfg.uop_cache_sets, cfg.uop_cache_lines_per_set),
            dbq: VecDeque::new(),
            cmq: VecDeque::new(),
            activity: EngineActivity::default(),
            walk_busy_until: 0,
            last_walk_retired: 0,
            last_mask_reset: 0,
            pending_install: None,
            next_chain: 1,
            walks: 0,
            walks_dropped: 0,
            traces_installed: 0,
            cfg,
        }
    }

    /// Records a retired uop. `retired` is the total retired-instruction
    /// count; `now` the current cycle. Triggers the periodic mask reset and,
    /// when the Fill Buffer is full and the walk period has elapsed, the
    /// backwards walk. `diag`, when present, observes walk outcomes; it
    /// never influences them.
    pub fn on_retire(
        &mut self,
        entry: FbEntry,
        retired: u64,
        now: u64,
        diag: Option<&mut CdfDiagnostics>,
    ) {
        if retired - self.last_mask_reset >= self.cfg.mask_reset_period {
            self.masks.reset();
            self.last_mask_reset = retired;
        }
        self.fill.push(entry);
        self.activity.fill_pushes += 1;
        if self.fill.is_full()
            && retired - self.last_walk_retired >= self.cfg.walk_period
            && now >= self.walk_busy_until
            && self.pending_install.is_none()
        {
            self.do_walk(retired, now, diag);
        }
    }

    fn do_walk(&mut self, retired: u64, now: u64, diag: Option<&mut CdfDiagnostics>) {
        let result = if self.cfg.use_mask_cache {
            self.fill.walk(&self.masks)
        } else {
            // Ablation: no cross-path mask accumulation.
            self.fill.walk(&MaskCache::new(1, 1))
        };
        self.activity.walk_steps += result.total as u64;
        self.walks += 1;
        self.last_walk_retired = retired;
        self.walk_busy_until = now + self.cfg.walk_latency;
        let frac = result.marked_fraction();
        let density_ok = !self.cfg.apply_density_guards
            || (frac >= self.cfg.min_density && frac <= self.cfg.max_density);
        // A window with no live CCT seeds means the loads/branches that
        // justified these chains stopped qualifying (the misses went away):
        // tear the blocks down so the core "defaults to regular execution"
        // (§4.3) instead of riding stale masks until the periodic reset.
        let seeds_ok = result.seeds > 0 || !self.cfg.apply_density_guards;
        if result.marked > 0 && density_ok && seeds_ok {
            // Every surviving walk row becomes a chain with a stable
            // provenance id, assigned here — at walk time — regardless of
            // whether diagnostics observe the run, so enabling them can
            // never change engine state.
            let rows = result
                .block_masks
                .into_iter()
                .map(|(block, len, mask)| {
                    let id = self.next_chain;
                    self.next_chain += 1;
                    (block, len, mask, id)
                })
                .collect();
            self.pending_install = Some((self.walk_busy_until, rows));
            if let Some(d) = diag {
                d.note_walk();
            }
        } else {
            // Density guard: remove the involved blocks so the core stops
            // entering CDF mode on them (§3.2).
            self.walks_dropped += 1;
            for (block, _, _) in &result.block_masks {
                self.masks.remove(*block);
                self.traces.remove(*block);
                self.activity.mask_ops += 1;
                self.activity.uop_cache_ops += 1;
            }
            if let Some(d) = diag {
                d.note_walk();
                d.note_walk_dropped();
            }
        }
        // Permissive-counter feedback: too few marked → widen coverage.
        let permissive = frac < self.cfg.permissive_below;
        self.cct_loads.set_permissive(permissive);
        self.cct_branches.set_permissive(permissive);
        self.fill.clear();
    }

    /// Advances the engine one cycle: completes a pending install when the
    /// walk latency has elapsed. `diag`, when present, observes installs.
    pub fn tick(&mut self, now: u64, mut diag: Option<&mut CdfDiagnostics>) {
        if let Some((ready, _)) = &self.pending_install {
            if *ready <= now {
                let (_, blocks) = self.pending_install.take().expect("just checked");
                for (block, len, mask, chain) in blocks {
                    if len > 64 {
                        continue; // offsets ≥ 64 not representable in a mask
                    }
                    let merged = if self.cfg.use_mask_cache {
                        self.activity.mask_ops += 1;
                        self.masks.merge(block, mask)
                    } else {
                        mask
                    };
                    let trace = Trace::from_mask(block, len, merged).with_chain(chain);
                    let crit = trace.crit_offsets.len() as u32;
                    if self.traces.insert(trace) {
                        self.traces_installed += 1;
                        self.activity.uop_cache_ops += 1;
                        if let Some(d) = diag.as_deref_mut() {
                            d.note_install(chain, block, len, crit, now);
                        }
                    } else if let Some(d) = diag.as_deref_mut() {
                        d.note_install_rejected();
                    }
                }
            }
        }
    }

    /// Whether any trace exists (quick check before probing on every fetch).
    pub fn has_traces(&self) -> bool {
        !self.traces.is_empty()
    }

    /// Hands out the next chain-provenance id (for traces installed outside
    /// the walk pipeline, e.g. compiler-seeded chains). Always advances the
    /// counter so id assignment never depends on diagnostics being enabled.
    pub(crate) fn alloc_chain(&mut self) -> u64 {
        let id = self.next_chain;
        self.next_chain += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdf_isa::RegSet;

    fn seed_entry(i: u32, crit: bool) -> FbEntry {
        FbEntry {
            pc: Pc::new(i),
            block_start: Pc::new(0),
            block_len: 8,
            offset: (i % 8) as u8,
            srcs: RegSet::EMPTY,
            dsts: RegSet::EMPTY,
            mem_read: None,
            mem_write: None,
            crit_seed: crit,
        }
    }

    fn engine(fill: usize) -> CdfEngine {
        CdfEngine::new(CdfConfig {
            fill_buffer: fill,
            walk_period: 0,
            walk_latency: 10,
            ..CdfConfig::default()
        })
    }

    #[test]
    fn walk_triggers_when_full_and_installs_after_latency() {
        let mut e = engine(8);
        for i in 0..8 {
            e.on_retire(seed_entry(i, i == 3), (i + 1) as u64, 100, None);
        }
        assert_eq!(e.walks, 1);
        assert!(e.fill.is_empty(), "buffer cleared after walk");
        assert!(!e.has_traces(), "install delayed by walk latency");
        e.tick(105, None);
        assert!(!e.has_traces());
        e.tick(110, None);
        assert!(e.has_traces());
        assert_eq!(e.traces_installed, 1);
        assert!(e.traces.probe(Pc::new(0)));
    }

    #[test]
    fn density_guard_drops_sparse_walks() {
        let mut e = engine(1024);
        // 1 seed out of 1024 (0.1%) is below the 0.2% guard.
        for i in 0..1024 {
            e.on_retire(seed_entry(i % 8, i == 0), (i + 1) as u64, 50, None);
        }
        assert_eq!(e.walks, 1);
        assert_eq!(e.walks_dropped, 1);
        e.tick(10_000, None);
        assert!(!e.has_traces());
    }

    #[test]
    fn density_guard_drops_dense_walks_and_removes_blocks() {
        let mut e = engine(8);
        // First: a healthy walk installs a trace.
        for i in 0..8 {
            e.on_retire(seed_entry(i, i == 3), (i + 1) as u64, 0, None);
        }
        e.tick(50, None);
        assert!(e.has_traces());
        // Then: everything marked (>50%) → involved blocks removed.
        for i in 0..8 {
            e.on_retire(seed_entry(i, true), (100 + i) as u64, 100, None);
        }
        assert_eq!(e.walks_dropped, 1);
        assert!(!e.has_traces(), "block removed by the density guard");
    }

    #[test]
    fn walk_period_gates_walks() {
        let mut e = CdfEngine::new(CdfConfig {
            fill_buffer: 4,
            walk_period: 1000,
            walk_latency: 1,
            ..CdfConfig::default()
        });
        for i in 0..4 {
            e.on_retire(seed_entry(i, true), (i + 1) as u64, 0, None);
        }
        assert_eq!(e.walks, 0, "period (1000 retires) has not elapsed yet");
        // The buffer keeps the latest window while waiting for the period.
        for i in 0..4 {
            e.on_retire(seed_entry(i, true), 10 + i as u64, 5, None);
        }
        assert_eq!(e.walks, 0);
        assert_eq!(e.fill.len(), 4, "ring keeps only the latest cap entries");
        // Once 1000 retires have passed, the next retire triggers the walk.
        e.on_retire(seed_entry(0, true), 1100, 2000, None);
        assert_eq!(e.walks, 1);
        // And the period gates the next one again.
        for i in 0..8 {
            e.on_retire(seed_entry(i % 4, true), 1101 + i as u64, 2001, None);
        }
        assert_eq!(e.walks, 1);
    }

    #[test]
    fn mask_reset_period() {
        let mut e = CdfEngine::new(CdfConfig {
            fill_buffer: 4,
            walk_period: 0,
            walk_latency: 0,
            mask_reset_period: 1000,
            ..CdfConfig::default()
        });
        for i in 0..4 {
            e.on_retire(seed_entry(i, i == 0), i as u64, 0, None);
        }
        e.tick(1, None);
        assert!(e.masks.get(Pc::new(0)).is_some());
        // Crossing the reset period clears the mask cache.
        e.on_retire(seed_entry(0, false), 2000, 10, None);
        assert!(e.masks.get(Pc::new(0)).is_none());
    }

    #[test]
    fn permissive_feedback_on_sparse_marking() {
        let mut e = engine(128);
        for i in 0..128 {
            e.on_retire(seed_entry(i % 8, i == 0), (i + 1) as u64, 0, None);
        }
        assert!(
            e.cct_loads.is_permissive(),
            "sparse marking flips to permissive"
        );
    }
}
