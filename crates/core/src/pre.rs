//! Precise Runahead (PRE) — the comparator of §4.1/§4.2.
//!
//! Implemented per the paper's methodology note: PRE shares CDF's marking
//! and trace machinery ("we use the same mechanism as CDF for marking and
//! fetching critical instructions in Precise Runahead, except we only mark
//! loads that cause full window stalls as critical"), and runs the marked
//! dependence chains during full-window stalls using resources that are free
//! while the window is stalled (PRE's free-RS/PRF insight means entering and
//! exiting costs nothing; we model the episode as zero-cost to enter/exit
//! and bounded by the stall duration).
//!
//! Runahead execution here is a dataflow interpretation over a scratch
//! register value map seeded from the current rename state: uops whose
//! sources are all *known* produce known results; loads with known addresses
//! issue real memory accesses (the prefetch benefit — and the extra traffic
//! when the chain was stale); anything depending on the stalled load or on
//! an unavailable register produces an *unknown* value that poisons its
//! consumers, exactly the filtered-chain behaviour of runahead hardware.
//! Runahead stores do not commit; branches use a read-only predictor peek.

use crate::types::Seq;
use cdf_isa::{ArchReg, Op, Pc, StaticUop, NUM_ARCH_REGS};
use std::collections::VecDeque;

/// What interpreting one runahead uop asks the core to do.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunaheadEffect {
    /// Nothing externally visible (ALU work, store, unknown-value sink).
    None,
    /// Issue a memory read of the given address (a runahead load whose
    /// address is known).
    IssueLoad(u64),
    /// A conditional branch whose direction is *known* from runahead values
    /// (the core steers runahead fetch with it).
    BranchResolved(bool),
    /// A conditional branch whose operands are unknown (core falls back to
    /// the predictor peek).
    BranchUnknown,
}

/// Runahead scratch state: a per-architectural-register value map where
/// `None` means "unknown in runahead" (INV in runahead terminology).
#[derive(Clone, Debug)]
pub struct RunaheadState {
    values: [Option<u64>; NUM_ARCH_REGS],
    /// Uops of the current trace still to interpret.
    pub(crate) queue: VecDeque<Pc>,
    /// Next block to fetch from the Critical Uop Cache (`None` once fetch
    /// stops).
    pub(crate) fetch_pc: Option<Pc>,
    /// Uops interpreted this episode (bounded by config).
    pub(crate) issued: usize,
    /// Whether an episode is active.
    pub(crate) active: bool,
    /// Total episodes entered.
    pub episodes: u64,
    /// Total runahead uops interpreted.
    pub uops_executed: u64,
    /// Total runahead loads issued to memory.
    pub loads_issued: u64,
}

impl Default for RunaheadState {
    fn default() -> RunaheadState {
        RunaheadState::new()
    }
}

impl RunaheadState {
    /// Creates an idle runahead engine.
    pub fn new() -> RunaheadState {
        RunaheadState {
            values: [None; NUM_ARCH_REGS],
            queue: VecDeque::new(),
            fetch_pc: None,
            issued: 0,
            active: false,
            episodes: 0,
            uops_executed: 0,
            loads_issued: 0,
        }
    }

    /// Whether an episode is running.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Begins an episode at the block containing the stalling load, seeding
    /// the scratch values with whatever the core's rename state knows.
    pub(crate) fn enter(&mut self, block_start: Pc, seed: [Option<u64>; NUM_ARCH_REGS]) {
        self.values = seed;
        self.queue.clear();
        self.fetch_pc = Some(block_start);
        self.issued = 0;
        self.active = true;
        self.episodes += 1;
    }

    /// Ends the episode (stall resolved or budget exhausted). All scratch
    /// state is discarded — PRE's free-resource trick means nothing to clean.
    pub(crate) fn exit(&mut self) {
        self.active = false;
        self.queue.clear();
        self.fetch_pc = None;
    }

    fn get(&self, r: Option<ArchReg>) -> Option<u64> {
        r.and_then(|r| self.values[r.index()])
    }

    fn set(&mut self, r: Option<ArchReg>, v: Option<u64>) {
        if let Some(r) = r {
            self.values[r.index()] = v;
        }
    }

    /// Reads a scratch register (tests / inspection).
    pub fn value(&self, r: ArchReg) -> Option<u64> {
        self.values[r.index()]
    }

    /// Interprets one uop against the scratch state. `service_load` is
    /// invoked with the effective address of a known-address load and returns
    /// the loaded value (the core issues the real memory access there and
    /// supplies the functional memory's value, so dependent chain uops keep
    /// meaningful addresses — hardware runahead forwards the actual fill).
    pub(crate) fn eval<F>(&mut self, uop: &StaticUop, service_load: F) -> RunaheadEffect
    where
        F: FnOnce(u64) -> Option<u64>,
    {
        self.uops_executed += 1;
        match uop.op {
            Op::Nop | Op::Halt | Op::Jump => RunaheadEffect::None,
            Op::MovImm => {
                self.set(uop.dst, Some(uop.imm as u64));
                RunaheadEffect::None
            }
            Op::Alu(op) => {
                let a = self.get(uop.src1);
                let b = if uop.src2.is_some() {
                    self.get(uop.src2)
                } else {
                    Some(uop.imm as u64)
                };
                let v = match (a, b) {
                    (Some(a), Some(b)) => Some(op.apply(a, b)),
                    _ => None,
                };
                self.set(uop.dst, v);
                RunaheadEffect::None
            }
            Op::Load => {
                let base = if uop.mem.base.is_some() {
                    self.get(uop.mem.base)
                } else {
                    Some(0)
                };
                let index = if uop.mem.index.is_some() {
                    self.get(uop.mem.index)
                } else {
                    Some(0)
                };
                match (base, index) {
                    (Some(b), Some(i)) => {
                        self.loads_issued += 1;
                        let addr = uop.mem.effective(b, i);
                        let v = service_load(addr);
                        self.set(uop.dst, v);
                        RunaheadEffect::IssueLoad(addr)
                    }
                    _ => {
                        self.set(uop.dst, None);
                        RunaheadEffect::None
                    }
                }
            }
            Op::Store => RunaheadEffect::None, // runahead stores are dropped
            Op::Branch(cond) => {
                let a = self.get(uop.src1);
                let b = if uop.src2.is_some() {
                    self.get(uop.src2)
                } else {
                    Some(uop.imm as u64)
                };
                match (a, b) {
                    (Some(a), Some(b)) => RunaheadEffect::BranchResolved(cond.eval(a, b)),
                    _ => RunaheadEffect::BranchUnknown,
                }
            }
        }
    }
}

/// Seq is unused here but re-exported patterns keep rustc quiet about the
/// import in doc examples.
#[allow(unused)]
type _Unused = Seq;

#[cfg(test)]
mod tests {
    use super::*;
    use cdf_isa::{AluOp, Cond, MemAddressing};

    fn seed_with(pairs: &[(ArchReg, u64)]) -> [Option<u64>; NUM_ARCH_REGS] {
        let mut s = [None; NUM_ARCH_REGS];
        for &(r, v) in pairs {
            s[r.index()] = Some(v);
        }
        s
    }

    #[test]
    fn known_alu_chain_produces_known_values() {
        let mut ra = RunaheadState::new();
        ra.enter(Pc::new(0), seed_with(&[(ArchReg::R1, 10)]));
        let u = StaticUop::alu_imm(AluOp::Add, ArchReg::R2, ArchReg::R1, 5);
        assert_eq!(ra.eval(&u, |_| None), RunaheadEffect::None);
        assert_eq!(ra.value(ArchReg::R2), Some(15));
    }

    #[test]
    fn unknown_source_poisons_consumers() {
        let mut ra = RunaheadState::new();
        ra.enter(Pc::new(0), seed_with(&[(ArchReg::R1, 10)]));
        // R9 unknown → R3 unknown → branch on R3 unknown.
        let u = StaticUop::alu(AluOp::Add, ArchReg::R3, ArchReg::R1, ArchReg::R9);
        ra.eval(&u, |_| None);
        assert_eq!(ra.value(ArchReg::R3), None);
        let br = StaticUop::branch_imm(Cond::Ne, ArchReg::R3, 0, Pc::new(0));
        assert_eq!(ra.eval(&br, |_| None), RunaheadEffect::BranchUnknown);
    }

    #[test]
    fn load_with_known_address_issues() {
        let mut ra = RunaheadState::new();
        ra.enter(Pc::new(0), seed_with(&[(ArchReg::R1, 0x1000)]));
        let u = StaticUop {
            op: Op::Load,
            dst: Some(ArchReg::R2),
            mem: MemAddressing {
                base: Some(ArchReg::R1),
                disp: 8,
                ..MemAddressing::default()
            },
            ..StaticUop::nop()
        };
        assert_eq!(
            ra.eval(&u, |addr| {
                assert_eq!(addr, 0x1008);
                Some(77)
            }),
            RunaheadEffect::IssueLoad(0x1008)
        );
        assert_eq!(ra.value(ArchReg::R2), Some(77));
        assert_eq!(ra.loads_issued, 1);
    }

    #[test]
    fn load_with_unknown_address_is_dropped() {
        let mut ra = RunaheadState::new();
        ra.enter(Pc::new(0), [None; NUM_ARCH_REGS]);
        let u = StaticUop {
            op: Op::Load,
            dst: Some(ArchReg::R2),
            mem: MemAddressing {
                base: Some(ArchReg::R1),
                ..MemAddressing::default()
            },
            ..StaticUop::nop()
        };
        assert_eq!(ra.eval(&u, |_| None), RunaheadEffect::None);
        assert_eq!(ra.value(ArchReg::R2), None);
        assert_eq!(ra.loads_issued, 0);
    }

    #[test]
    fn resolved_branch_reports_direction() {
        let mut ra = RunaheadState::new();
        ra.enter(Pc::new(0), seed_with(&[(ArchReg::R1, 0)]));
        let br = StaticUop::branch_imm(Cond::Eq, ArchReg::R1, 0, Pc::new(3));
        assert_eq!(ra.eval(&br, |_| None), RunaheadEffect::BranchResolved(true));
    }

    #[test]
    fn exit_clears_activity() {
        let mut ra = RunaheadState::new();
        ra.enter(Pc::new(0), [None; NUM_ARCH_REGS]);
        assert!(ra.is_active());
        ra.exit();
        assert!(!ra.is_active());
        assert_eq!(ra.episodes, 1);
        ra.enter(Pc::new(0), [None; NUM_ARCH_REGS]);
        assert_eq!(ra.episodes, 2);
    }
}
