//! Criticality-provenance diagnostics: chain-lifecycle tracing plus the
//! coverage / accuracy / timeliness metric families the prefetching
//! literature uses to explain a mechanism, applied to CDF's critical chains.
//!
//! Every reconstructed chain gets a stable id at walk time (stamped on the
//! [`Trace`](crate::uop_cache::Trace) it installs); the pipeline stages
//! report lifecycle events against that id — walk → install → CUC hit at
//! fetch → critical issue → CMQ-replay consumption, or poison/squash — so a
//! run can be *explained*, not just scored:
//!
//! * **Coverage** — of the retired LLC-miss loads and mispredicted
//!   hard-to-predict branches (the events CDF exists to hide), what fraction
//!   had a live CUC trace marking that very uop critical at retire time?
//! * **Accuracy** — of the uops the critical stream fetched, what fraction
//!   was actually consumed by the replayed program-order stream (vs.
//!   poisoned by a dependence violation, squashed by a flush, or simply
//!   never replayed — wasted)?
//! * **Timeliness** — for each critical-stream LLC-miss initiation, how many
//!   cycles of lead did the early issue buy before the program-order stream
//!   replayed the load (log₂ histogram), and how far ahead of the regular
//!   stream did DBQ-resolved branches flip their entries?
//!
//! The collector follows the repo's zero-cost observability contract: it
//! lives in an `Option<CdfDiagnostics>` sidecar on the core
//! ([`Core::enable_diagnostics`](crate::Core::enable_diagnostics)), is never
//! part of [`CoreStats`](crate::CoreStats) (golden snapshots stay
//! untouched), and a disabled run executes none of this module's code —
//! enabled and disabled runs are bit-identical, which
//! `crates/sim/tests/explain.rs` enforces across all seven mechanisms.

use crate::telemetry::Histogram;
use cdf_isa::Pc;
use std::collections::{HashMap, VecDeque};

/// Cap on distinct chain records kept; later chains still feed the aggregate
/// counters but are not individually recorded (see
/// [`CdfDiagnostics::chains_dropped`]).
pub const MAX_CHAIN_RECORDS: usize = 65_536;

/// Sampling cadence for the per-interval diagnostics series (mirrors
/// [`TelemetryConfig`](crate::telemetry::TelemetryConfig)'s interval ring).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DiagConfig {
    /// Cycles per interval sample.
    pub interval: u64,
    /// Ring capacity; older samples fold into the running totals.
    pub ring_capacity: usize,
}

impl Default for DiagConfig {
    fn default() -> DiagConfig {
        DiagConfig {
            interval: 1024,
            ring_capacity: 512,
        }
    }
}

/// Point-in-time copy of the cumulative coverage/accuracy counters, used to
/// form interval deltas.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct DiagSnapshot {
    cycles: u64,
    walks: u64,
    installs: u64,
    cuc_hits: u64,
    cuc_misses: u64,
    fetched: u64,
    consumed: u64,
    poisoned: u64,
    squashed: u64,
    loads_covered: u64,
    loads_total: u64,
    branches_covered: u64,
    branches_total: u64,
    miss_initiations: u64,
}

/// One interval's worth of coverage/accuracy activity (deltas, not
/// cumulative values).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DiagIntervalSample {
    /// Cycle the interval started at (previous sample point).
    pub start_cycle: u64,
    /// Cycle the interval ended at (this sample point).
    pub end_cycle: u64,
    /// Interval width in cycles.
    pub cycles: u64,
    /// Fill-buffer walks in the interval.
    pub walks: u64,
    /// CUC installs in the interval.
    pub installs: u64,
    /// Critical-fetch CUC hits in the interval.
    pub cuc_hits: u64,
    /// Critical-fetch CUC misses in the interval.
    pub cuc_misses: u64,
    /// Critical uops fetched in the interval.
    pub fetched: u64,
    /// Fetched uops consumed by replay in the interval.
    pub consumed: u64,
    /// Fetched uops poisoned in the interval.
    pub poisoned: u64,
    /// Fetched uops squashed in the interval.
    pub squashed: u64,
    /// Covered retired LLC-miss loads in the interval.
    pub loads_covered: u64,
    /// All retired LLC-miss loads in the interval.
    pub loads_total: u64,
    /// Covered retired mispredicted H2P branches in the interval.
    pub branches_covered: u64,
    /// All retired mispredicted H2P branches in the interval.
    pub branches_total: u64,
    /// Critical-stream LLC-miss initiations in the interval.
    pub miss_initiations: u64,
}

impl DiagIntervalSample {
    fn delta(prev: &DiagSnapshot, cur: &DiagSnapshot) -> DiagIntervalSample {
        DiagIntervalSample {
            start_cycle: prev.cycles,
            end_cycle: cur.cycles,
            cycles: cur.cycles - prev.cycles,
            walks: cur.walks - prev.walks,
            installs: cur.installs - prev.installs,
            cuc_hits: cur.cuc_hits - prev.cuc_hits,
            cuc_misses: cur.cuc_misses - prev.cuc_misses,
            fetched: cur.fetched - prev.fetched,
            consumed: cur.consumed - prev.consumed,
            poisoned: cur.poisoned - prev.poisoned,
            squashed: cur.squashed - prev.squashed,
            loads_covered: cur.loads_covered - prev.loads_covered,
            loads_total: cur.loads_total - prev.loads_total,
            branches_covered: cur.branches_covered - prev.branches_covered,
            branches_total: cur.branches_total - prev.branches_total,
            miss_initiations: cur.miss_initiations - prev.miss_initiations,
        }
    }

    fn accumulate(&mut self, other: &DiagIntervalSample) {
        if self.cycles == 0 {
            self.start_cycle = other.start_cycle;
        }
        self.end_cycle = other.end_cycle;
        self.cycles += other.cycles;
        self.walks += other.walks;
        self.installs += other.installs;
        self.cuc_hits += other.cuc_hits;
        self.cuc_misses += other.cuc_misses;
        self.fetched += other.fetched;
        self.consumed += other.consumed;
        self.poisoned += other.poisoned;
        self.squashed += other.squashed;
        self.loads_covered += other.loads_covered;
        self.loads_total += other.loads_total;
        self.branches_covered += other.branches_covered;
        self.branches_total += other.branches_total;
        self.miss_initiations += other.miss_initiations;
    }

    fn is_zero(&self) -> bool {
        *self
            == DiagIntervalSample {
                start_cycle: self.start_cycle,
                end_cycle: self.end_cycle,
                ..DiagIntervalSample::default()
            }
    }

    /// Accuracy over the interval: consumed / fetched (0 when idle).
    pub fn accuracy(&self) -> f64 {
        if self.fetched == 0 {
            0.0
        } else {
            self.consumed as f64 / self.fetched as f64
        }
    }

    /// LLC-miss-load coverage over the interval.
    pub fn load_coverage(&self) -> Coverage {
        Coverage {
            covered: self.loads_covered,
            total: self.loads_total,
        }
    }

    /// Mispredicted-H2P-branch coverage over the interval.
    pub fn branch_coverage(&self) -> Coverage {
        Coverage {
            covered: self.branches_covered,
            total: self.branches_total,
        }
    }
}

/// Ring-buffered coverage/accuracy time series. Samples older than the ring
/// capacity fold into [`totals`](Self::totals) rather than being lost, so
/// the series always accounts for the whole run — the same totality
/// contract as telemetry's [`IntervalSeries`](crate::IntervalSeries),
/// property-tested in `crates/sim/tests/explain.rs`.
#[derive(Clone, PartialEq, Debug)]
pub struct DiagIntervalSeries {
    ring: VecDeque<DiagIntervalSample>,
    capacity: usize,
    evicted: DiagIntervalSample,
    evicted_count: u64,
    last: DiagSnapshot,
}

impl Default for DiagIntervalSeries {
    fn default() -> DiagIntervalSeries {
        DiagIntervalSeries::new(DiagConfig::default().ring_capacity)
    }
}

impl DiagIntervalSeries {
    fn new(capacity: usize) -> DiagIntervalSeries {
        DiagIntervalSeries {
            ring: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            capacity: capacity.max(1),
            evicted: DiagIntervalSample::default(),
            evicted_count: 0,
            last: DiagSnapshot::default(),
        }
    }

    fn sample(&mut self, cur: DiagSnapshot) {
        let delta = DiagIntervalSample::delta(&self.last, &cur);
        self.last = cur;
        if delta.cycles == 0 && delta.is_zero() {
            return; // zero-width flush (window boundary on an interval edge)
        }
        if self.ring.len() == self.capacity {
            let old = self.ring.pop_front().expect("ring non-empty at capacity");
            self.evicted.accumulate(&old);
            self.evicted_count += 1;
        }
        self.ring.push_back(delta);
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &DiagIntervalSample> {
        self.ring.iter()
    }

    /// Retained sample count.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Samples evicted into the running totals.
    pub fn evicted_count(&self) -> u64 {
        self.evicted_count
    }

    /// Sum of **all** deltas since diagnostics were enabled — evicted and
    /// retained. Equals the end-of-run aggregate counters.
    pub fn totals(&self) -> DiagIntervalSample {
        let mut t = self.evicted;
        for s in &self.ring {
            t.accumulate(s);
        }
        t
    }
}

/// Lifetime counters for one reconstructed chain (one installed CUC trace).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChainRecord {
    /// Stable id assigned by the walk that built the chain (1-based; 0 means
    /// "no chain" everywhere else in the core).
    pub id: u64,
    /// Basic block the trace tags.
    pub block_start: Pc,
    /// Total uops in the block.
    pub block_len: u32,
    /// Critical uops the trace marks.
    pub crit_uops: u32,
    /// Cycle the trace entered the Critical Uop Cache.
    pub installed_at: u64,
    /// CUC hits against this trace by the critical fetch stream.
    pub cuc_hits: u64,
    /// Critical uops fetched from this trace.
    pub uops_fetched: u64,
    /// Fetched uops whose mapping the program-order stream replayed.
    pub uops_consumed: u64,
    /// Fetched uops discarded as poisoned (dependence violation).
    pub uops_poisoned: u64,
    /// Fetched uops removed by a pipeline flush before replay.
    pub uops_squashed: u64,
    /// Cycle of the most recent lifecycle event against this chain.
    pub last_event: u64,
}

impl ChainRecord {
    /// Fetched uops with no recorded outcome (never replayed before the
    /// trace went cold or the run ended) — pure waste.
    pub fn uops_wasted(&self) -> u64 {
        self.uops_fetched
            .saturating_sub(self.uops_consumed + self.uops_poisoned + self.uops_squashed)
    }
}

/// One coverage ratio: how many of `denominator` trigger events had a live
/// covering trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Coverage {
    /// Trigger events whose uop a live CUC trace marked critical.
    pub covered: u64,
    /// All trigger events (retired LLC-miss loads, or retired mispredicted
    /// H2P branches).
    pub total: u64,
}

impl Coverage {
    /// `covered / total` (0 when there were no triggers).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.covered as f64 / self.total as f64
        }
    }
}

/// The criticality-provenance collector. Observation-only: the pipeline
/// reports events into it; it never influences execution.
#[derive(Clone, Debug, Default)]
pub struct CdfDiagnostics {
    chains: Vec<ChainRecord>,
    index: HashMap<u64, usize>,
    /// Chains beyond [`MAX_CHAIN_RECORDS`] that were aggregated but not
    /// individually recorded.
    pub chains_dropped: u64,

    /// Fill-buffer walks performed.
    pub walks: u64,
    /// Walks whose output the density/seed guards discarded.
    pub walks_dropped: u64,
    /// Traces installed into the CUC (chain creations or refreshes).
    pub installs: u64,
    /// Walk rows the CUC rejected (oversized traces).
    pub installs_rejected: u64,

    /// Critical-fetch CUC lookups that hit.
    pub cuc_fetch_hits: u64,
    /// Critical-fetch CUC lookups that missed (each ends CDF mode).
    pub cuc_fetch_misses: u64,

    /// Coverage of retired LLC-miss loads.
    pub load_coverage: Coverage,
    /// Coverage of retired mispredicted hard-to-predict branches.
    pub branch_coverage: Coverage,

    /// Uops fetched by the critical stream.
    pub critical_uops_fetched: u64,
    /// Fetched uops consumed by CMQ replay in the program-order stream.
    pub critical_uops_consumed: u64,
    /// Fetched uops discarded as poisoned at replay.
    pub critical_uops_poisoned: u64,
    /// Fetched uops removed by flushes before replay.
    pub critical_uops_squashed: u64,

    /// Critical-stream LLC-miss initiations (loads the critical stream
    /// issued that went to DRAM). Every initiation contributes exactly one
    /// [`lead_time`](Self::lead_time) sample.
    pub llc_miss_initiations: u64,
    /// log₂ histogram of miss-initiation lead time: cycles between the
    /// critical stream issuing an LLC-miss load and the program-order stream
    /// replaying it. Initiations squashed or never replayed record 0 (no
    /// lead realized).
    pub lead_time: Histogram,
    /// log₂ histogram of branch early-resolution distance: how many sequence
    /// numbers ahead of the regular fetch stream a critical-stream branch
    /// resolved (DBQ entry fixed in place, no refetch).
    pub branch_resolution: Histogram,

    /// LLC-miss initiations still awaiting their replay (seq → issue cycle).
    pending_leads: HashMap<u64, u64>,

    config: DiagConfig,
    intervals: DiagIntervalSeries,
}

impl CdfDiagnostics {
    /// A fresh, empty collector with the default sampling cadence.
    pub fn new() -> CdfDiagnostics {
        CdfDiagnostics::default()
    }

    /// A fresh collector with an explicit interval-sampling cadence.
    pub fn with_config(config: DiagConfig) -> CdfDiagnostics {
        CdfDiagnostics {
            config,
            intervals: DiagIntervalSeries::new(config.ring_capacity),
            ..CdfDiagnostics::default()
        }
    }

    /// The sampling cadence in effect.
    pub fn config(&self) -> DiagConfig {
        self.config
    }

    /// The per-interval coverage/accuracy time series.
    pub fn intervals(&self) -> &DiagIntervalSeries {
        &self.intervals
    }

    /// Whether cycle `now` lands on an interval boundary (the core calls
    /// [`sample_interval`](Self::sample_interval) then).
    pub fn interval_due(&self, now: u64) -> bool {
        now > 0 && now.is_multiple_of(self.config.interval)
    }

    /// Closes the current interval at cycle `now` and starts the next one.
    pub fn sample_interval(&mut self, now: u64) {
        let cur = DiagSnapshot {
            cycles: now,
            walks: self.walks,
            installs: self.installs,
            cuc_hits: self.cuc_fetch_hits,
            cuc_misses: self.cuc_fetch_misses,
            fetched: self.critical_uops_fetched,
            consumed: self.critical_uops_consumed,
            poisoned: self.critical_uops_poisoned,
            squashed: self.critical_uops_squashed,
            loads_covered: self.load_coverage.covered,
            loads_total: self.load_coverage.total,
            branches_covered: self.branch_coverage.covered,
            branches_total: self.branch_coverage.total,
            miss_initiations: self.llc_miss_initiations,
        };
        self.intervals.sample(cur);
    }

    /// All chain records, in walk order.
    pub fn chains(&self) -> &[ChainRecord] {
        &self.chains
    }

    /// Fetched uops with no outcome recorded — wasted critical fetch work.
    pub fn critical_uops_wasted(&self) -> u64 {
        self.critical_uops_fetched.saturating_sub(
            self.critical_uops_consumed + self.critical_uops_poisoned + self.critical_uops_squashed,
        )
    }

    /// Accuracy: consumed / fetched (0 when nothing was fetched).
    pub fn accuracy(&self) -> f64 {
        if self.critical_uops_fetched == 0 {
            0.0
        } else {
            self.critical_uops_consumed as f64 / self.critical_uops_fetched as f64
        }
    }

    // -- walk / install lifecycle ------------------------------------------

    /// A fill-buffer walk ran.
    pub fn note_walk(&mut self) {
        self.walks += 1;
    }

    /// A walk's output was discarded by the density/seed guards.
    pub fn note_walk_dropped(&mut self) {
        self.walks_dropped += 1;
    }

    /// Chain `id`'s trace entered the CUC at cycle `now`.
    pub fn note_install(&mut self, id: u64, block_start: Pc, block_len: u32, crit: u32, now: u64) {
        self.installs += 1;
        if let Some(&i) = self.index.get(&id) {
            let c = &mut self.chains[i];
            c.crit_uops = crit;
            c.last_event = now;
            return;
        }
        if self.chains.len() >= MAX_CHAIN_RECORDS {
            self.chains_dropped += 1;
            return;
        }
        self.index.insert(id, self.chains.len());
        self.chains.push(ChainRecord {
            id,
            block_start,
            block_len,
            crit_uops: crit,
            installed_at: now,
            cuc_hits: 0,
            uops_fetched: 0,
            uops_consumed: 0,
            uops_poisoned: 0,
            uops_squashed: 0,
            last_event: now,
        });
    }

    /// The CUC rejected a walk row (trace larger than a set).
    pub fn note_install_rejected(&mut self) {
        self.installs_rejected += 1;
    }

    fn chain_mut(&mut self, id: u64, now: u64) -> Option<&mut ChainRecord> {
        let i = *self.index.get(&id)?;
        let c = &mut self.chains[i];
        c.last_event = now;
        Some(c)
    }

    // -- fetch -------------------------------------------------------------

    /// The critical fetch stream hit chain `id` in the CUC and emitted
    /// `uops` critical uops from it.
    pub fn note_cuc_hit(&mut self, id: u64, uops: u64, now: u64) {
        self.cuc_fetch_hits += 1;
        self.critical_uops_fetched += uops;
        if let Some(c) = self.chain_mut(id, now) {
            c.cuc_hits += 1;
            c.uops_fetched += uops;
        }
    }

    /// The critical fetch stream missed in the CUC (CDF mode will wind
    /// down).
    pub fn note_cuc_miss(&mut self) {
        self.cuc_fetch_misses += 1;
    }

    // -- replay outcomes ---------------------------------------------------

    /// The program-order stream replayed a critical uop's mapping from the
    /// CMQ (the fetched uop was consumed).
    pub fn note_consumed(&mut self, chain: u64, seq: u64, now: u64) {
        self.critical_uops_consumed += 1;
        if let Some(c) = self.chain_mut(chain, now) {
            c.uops_consumed += 1;
        }
        if let Some(issued) = self.pending_leads.remove(&seq) {
            self.lead_time.record(now.saturating_sub(issued));
        }
    }

    /// A critical uop reached replay poisoned (dependence violation); its
    /// result is discarded and the program-order stream re-executes.
    pub fn note_poisoned(&mut self, chain: u64, seq: u64, now: u64) {
        self.critical_uops_poisoned += 1;
        if let Some(c) = self.chain_mut(chain, now) {
            c.uops_poisoned += 1;
        }
        if self.pending_leads.remove(&seq).is_some() {
            self.lead_time.record(0);
        }
    }

    /// A fetched critical uop was removed by a flush before replay.
    pub fn note_squashed(&mut self, chain: u64, seq: u64, now: u64) {
        self.critical_uops_squashed += 1;
        if let Some(c) = self.chain_mut(chain, now) {
            c.uops_squashed += 1;
        }
        if self.pending_leads.remove(&seq).is_some() {
            self.lead_time.record(0);
        }
    }

    // -- coverage ----------------------------------------------------------

    /// A load retired; `llc_miss` says whether it was serviced by DRAM and
    /// `covered` whether a live CUC trace marked this very uop critical.
    pub fn note_load_retired(&mut self, llc_miss: bool, covered: bool) {
        if llc_miss {
            self.load_coverage.total += 1;
            if covered {
                self.load_coverage.covered += 1;
            }
        }
    }

    /// A mispredicted hard-to-predict branch retired; `covered` as above.
    pub fn note_h2p_mispredict_retired(&mut self, covered: bool) {
        self.branch_coverage.total += 1;
        if covered {
            self.branch_coverage.covered += 1;
        }
    }

    // -- timeliness --------------------------------------------------------

    /// The critical stream issued an LLC-miss load (`seq`) at cycle `now`.
    pub fn note_miss_initiated(&mut self, seq: u64, now: u64) {
        if self.pending_leads.insert(seq, now).is_none() {
            self.llc_miss_initiations += 1;
        }
    }

    /// A critical-stream branch resolved `distance` sequence numbers ahead
    /// of the regular fetch stream (its DBQ entry was fixed in place).
    pub fn note_branch_resolved_early(&mut self, distance: u64) {
        self.branch_resolution.record(distance);
    }

    /// Closes the books: initiations never consumed (still in flight at the
    /// end of the run) record a lead of 0, restoring the invariant that
    /// lead-time samples equal LLC-miss initiations. Called by
    /// [`Core::take_diagnostics`](crate::Core::take_diagnostics).
    pub fn finalize(&mut self) {
        let outstanding = self.pending_leads.len();
        self.pending_leads.clear();
        for _ in 0..outstanding {
            self.lead_time.record(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_lifecycle_counters() {
        let mut d = CdfDiagnostics::new();
        d.note_walk();
        d.note_install(1, Pc::new(16), 8, 3, 100);
        d.note_cuc_hit(1, 3, 200);
        d.note_consumed(1, 10, 210);
        d.note_squashed(1, 11, 220);
        let c = &d.chains()[0];
        assert_eq!((c.cuc_hits, c.uops_fetched), (1, 3));
        assert_eq!((c.uops_consumed, c.uops_squashed), (1, 1));
        assert_eq!(c.uops_wasted(), 1);
        assert_eq!(d.critical_uops_wasted(), 1);
        assert!((d.accuracy() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reinstall_updates_in_place() {
        let mut d = CdfDiagnostics::new();
        d.note_install(5, Pc::new(0), 8, 2, 10);
        d.note_install(5, Pc::new(0), 8, 4, 50);
        assert_eq!(d.installs, 2);
        assert_eq!(d.chains().len(), 1);
        assert_eq!(d.chains()[0].crit_uops, 4);
        assert_eq!(d.chains()[0].installed_at, 10, "first install cycle kept");
    }

    #[test]
    fn lead_time_totality_via_finalize() {
        let mut d = CdfDiagnostics::new();
        d.note_miss_initiated(1, 100);
        d.note_miss_initiated(2, 110);
        d.note_miss_initiated(3, 120);
        d.note_consumed(0, 1, 400); // 300-cycle lead
        d.note_squashed(0, 2, 150); // no lead realized
        d.finalize(); // seq 3 never replayed → 0
        assert_eq!(d.llc_miss_initiations, 3);
        assert_eq!(d.lead_time.samples(), 3);
        assert_eq!(d.lead_time.buckets()[0], 2, "squashed + unconsumed");
        assert_eq!(d.lead_time.buckets()[Histogram::bucket_of(300)], 1);
    }

    #[test]
    fn interval_series_totals_equal_cumulative_counters() {
        let mut d = CdfDiagnostics::with_config(DiagConfig {
            interval: 10,
            ring_capacity: 2, // tiny ring: forces evictions into totals
        });
        for i in 1..=7u64 {
            let now = i * 10;
            d.note_walk();
            d.note_install(i, Pc::new(16 * i as u32), 8, 3, now - 5);
            d.note_cuc_hit(i, 3, now - 4);
            d.note_consumed(i, i, now - 3);
            d.note_load_retired(true, i % 2 == 0);
            d.note_h2p_mispredict_retired(true);
            d.note_miss_initiated(100 + i, now - 2);
            assert!(d.interval_due(now));
            d.sample_interval(now);
        }
        assert_eq!(d.intervals().len(), 2);
        assert_eq!(d.intervals().evicted_count(), 5);
        let t = d.intervals().totals();
        assert_eq!(t.walks, d.walks);
        assert_eq!(t.installs, d.installs);
        assert_eq!(t.cuc_hits, d.cuc_fetch_hits);
        assert_eq!(t.fetched, d.critical_uops_fetched);
        assert_eq!(t.consumed, d.critical_uops_consumed);
        assert_eq!(t.loads_covered, d.load_coverage.covered);
        assert_eq!(t.loads_total, d.load_coverage.total);
        assert_eq!(t.branches_covered, d.branch_coverage.covered);
        assert_eq!(t.branches_total, d.branch_coverage.total);
        assert_eq!(t.miss_initiations, d.llc_miss_initiations);
        assert_eq!(t.start_cycle, 0);
        assert_eq!(t.end_cycle, 70);
        assert_eq!(t.cycles, 70);
        // A zero-width, zero-activity flush is dropped, not double-counted.
        d.sample_interval(70);
        assert_eq!(d.intervals().len(), 2);
        assert_eq!(d.intervals().totals(), t);
    }

    #[test]
    fn coverage_fractions() {
        let mut d = CdfDiagnostics::new();
        d.note_load_retired(true, true);
        d.note_load_retired(true, false);
        d.note_load_retired(false, false); // hit: not a trigger
        d.note_h2p_mispredict_retired(true);
        assert_eq!(
            d.load_coverage,
            Coverage {
                covered: 1,
                total: 2
            }
        );
        assert!((d.load_coverage.fraction() - 0.5).abs() < 1e-12);
        assert!((d.branch_coverage.fraction() - 1.0).abs() < 1e-12);
    }
}
