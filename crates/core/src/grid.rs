//! Configuration-grid expansion over the core's sensitivity knobs.
//!
//! The campaign engine in `cdf-sim` sweeps sensitivity surfaces over the
//! sizing axes the paper varies: the instruction window (ROB and the
//! structures scaled with it), the Critical Uop Cache geometry, and the
//! dynamic-partitioning step. This module owns the *expansion*: a
//! [`ConfigGrid`] names the values per axis, [`ConfigGrid::points`] turns it
//! into a deterministic row-major list of [`ConfigPoint`]s, and each point
//! knows how to apply itself to a [`CoreConfig`] / [`CoreMode`] pair.
//!
//! A point equal to [`ConfigPoint::default`] applies as the identity — it
//! returns the input configuration untouched, so a default-grid campaign
//! cell runs byte-for-byte the same simulation as the plain sweep path
//! (asserted by the campaign metamorphic tests in `cdf-sim`).

use crate::config::{CoreConfig, CoreMode};

/// One point in a core-configuration grid: the knob values a campaign cell
/// runs under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConfigPoint {
    /// Reorder-buffer entries; the RS/LQ/SQ/PRF scale with it via
    /// [`CoreConfig::with_scaled_window`]. Table 1's default is 352.
    pub rob: usize,
    /// Critical Uop Cache sets ([`crate::CdfConfig::uop_cache_sets`]);
    /// default 64.
    pub cuc_sets: usize,
    /// Dynamic ROB/RS partition step ([`crate::CdfConfig::rob_step`]);
    /// default 8.
    pub partition_step: usize,
}

impl Default for ConfigPoint {
    fn default() -> ConfigPoint {
        ConfigPoint {
            rob: 352,
            cuc_sets: 64,
            partition_step: 8,
        }
    }
}

impl ConfigPoint {
    /// Whether this point is the Table 1 default (application is the
    /// identity).
    pub fn is_default(&self) -> bool {
        *self == ConfigPoint::default()
    }

    /// Stable label used in cell keys and reports, e.g.
    /// `rob352+cuc64+part8`.
    pub fn label(&self) -> String {
        format!(
            "rob{}+cuc{}+part{}",
            self.rob, self.cuc_sets, self.partition_step
        )
    }

    /// Parses a [`label`](Self::label) back into a point.
    pub fn parse(s: &str) -> Option<ConfigPoint> {
        let mut parts = s.split('+');
        let rob = parts.next()?.strip_prefix("rob")?.parse().ok()?;
        let cuc_sets = parts.next()?.strip_prefix("cuc")?.parse().ok()?;
        let partition_step = parts.next()?.strip_prefix("part")?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(ConfigPoint {
            rob,
            cuc_sets,
            partition_step,
        })
    }

    /// Applies the window knob to a core configuration. A default-ROB point
    /// returns the template unchanged (identity), so campaign cells at the
    /// default point reuse the caller's template byte for byte.
    pub fn apply_core(&self, base: &CoreConfig) -> CoreConfig {
        if self.rob == ConfigPoint::default().rob {
            return base.clone();
        }
        base.clone().with_scaled_window(self.rob)
    }

    /// Applies the CDF-structure knobs (CUC geometry, partition step) to a
    /// mechanism mode. Baseline modes carry no CDF structures and pass
    /// through; default knob values are the identity.
    pub fn apply_mode(&self, mode: CoreMode) -> CoreMode {
        let d = ConfigPoint::default();
        if self.cuc_sets == d.cuc_sets && self.partition_step == d.partition_step {
            return mode;
        }
        let patch = |mut cdf: crate::config::CdfConfig| {
            cdf.uop_cache_sets = self.cuc_sets;
            cdf.rob_step = self.partition_step;
            cdf
        };
        match mode {
            CoreMode::Cdf(c) => CoreMode::Cdf(patch(c)),
            CoreMode::Pre(mut p) => {
                p.cdf = patch(p.cdf);
                CoreMode::Pre(p)
            }
            passthrough => passthrough,
        }
    }
}

/// The axes of a configuration grid. Each axis lists the values to sweep;
/// an empty axis means "the default only". Expansion is row-major over
/// (rob, cuc_sets, partition_step), so the cell order — and everything
/// derived from it, like campaign cell ids — is deterministic.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ConfigGrid {
    /// ROB sizes (with the window scaled alongside).
    pub rob: Vec<usize>,
    /// Critical Uop Cache set counts.
    pub cuc_sets: Vec<usize>,
    /// Dynamic-partitioning ROB/RS steps.
    pub partition_step: Vec<usize>,
}

impl ConfigGrid {
    /// Whether every axis is empty (the grid is the single default point).
    pub fn is_default(&self) -> bool {
        self.rob.is_empty() && self.cuc_sets.is_empty() && self.partition_step.is_empty()
    }

    /// Expands the grid into its points, row-major over
    /// (rob, cuc_sets, partition_step). Empty axes contribute the default
    /// value, so the default grid expands to exactly one default point.
    pub fn points(&self) -> Vec<ConfigPoint> {
        let d = ConfigPoint::default();
        let axis = |vals: &[usize], default: usize| -> Vec<usize> {
            if vals.is_empty() {
                vec![default]
            } else {
                vals.to_vec()
            }
        };
        let robs = axis(&self.rob, d.rob);
        let cucs = axis(&self.cuc_sets, d.cuc_sets);
        let steps = axis(&self.partition_step, d.partition_step);
        let mut out = Vec::with_capacity(robs.len() * cucs.len() * steps.len());
        for &rob in &robs {
            for &cuc_sets in &cucs {
                for &partition_step in &steps {
                    out.push(ConfigPoint {
                        rob,
                        cuc_sets,
                        partition_step,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CdfConfig, PreConfig};

    #[test]
    fn default_grid_is_one_identity_point() {
        let grid = ConfigGrid::default();
        assert!(grid.is_default());
        let points = grid.points();
        assert_eq!(points, vec![ConfigPoint::default()]);
        assert!(points[0].is_default());

        let base = CoreConfig::default();
        let applied = points[0].apply_core(&base);
        assert_eq!(applied.rob, base.rob);
        assert_eq!(applied.rs, base.rs);
        let mode = CoreMode::Cdf(CdfConfig::default());
        assert_eq!(points[0].apply_mode(mode.clone()), mode);
    }

    #[test]
    fn expansion_is_row_major_and_sized() {
        let grid = ConfigGrid {
            rob: vec![256, 352],
            cuc_sets: vec![32, 64],
            partition_step: vec![8],
        };
        let points = grid.points();
        assert_eq!(points.len(), 4);
        assert_eq!((points[0].rob, points[0].cuc_sets), (256, 32));
        assert_eq!((points[1].rob, points[1].cuc_sets), (256, 64));
        assert_eq!((points[2].rob, points[2].cuc_sets), (352, 32));
        assert_eq!((points[3].rob, points[3].cuc_sets), (352, 64));
    }

    #[test]
    fn apply_core_scales_the_window() {
        let p = ConfigPoint {
            rob: 704,
            ..ConfigPoint::default()
        };
        let cfg = p.apply_core(&CoreConfig::default());
        assert_eq!(cfg.rob, 704);
        assert_eq!(cfg.rs, 320);
        assert!(cfg.phys_regs >= 704 + 64);
    }

    #[test]
    fn apply_mode_patches_cdf_and_pre_but_not_baseline() {
        let p = ConfigPoint {
            cuc_sets: 16,
            partition_step: 4,
            ..ConfigPoint::default()
        };
        match p.apply_mode(CoreMode::Cdf(CdfConfig::default())) {
            CoreMode::Cdf(c) => {
                assert_eq!(c.uop_cache_sets, 16);
                assert_eq!(c.rob_step, 4);
            }
            other => panic!("expected Cdf, got {other:?}"),
        }
        match p.apply_mode(CoreMode::Pre(PreConfig::default())) {
            CoreMode::Pre(pre) => {
                assert_eq!(pre.cdf.uop_cache_sets, 16);
                assert!(!pre.cdf.mark_branches, "PRE semantics preserved");
            }
            other => panic!("expected Pre, got {other:?}"),
        }
        assert_eq!(p.apply_mode(CoreMode::Baseline), CoreMode::Baseline);
    }

    #[test]
    fn labels_round_trip() {
        for p in [
            ConfigPoint::default(),
            ConfigPoint {
                rob: 512,
                cuc_sets: 128,
                partition_step: 2,
            },
        ] {
            assert_eq!(ConfigPoint::parse(&p.label()), Some(p), "{}", p.label());
        }
        assert_eq!(ConfigPoint::parse("rob352"), None);
        assert_eq!(ConfigPoint::parse("rob352+cuc64+part8+x1"), None);
    }
}
