//! Physical register file, register alias tables, and the rename undo log.

use crate::types::{PhysReg, Seq};
use cdf_isa::{ArchReg, NUM_ARCH_REGS};
use std::collections::VecDeque;

/// The physical register file: values, ready bits, and the free list.
///
/// The critical partition limit implements §3.5: "The Reservation Stations
/// and Physical Registers are partitioned by imposing a limit on the number
/// of critical uops in both the structures."
#[derive(Clone, Debug)]
pub(crate) struct RegFile {
    values: Vec<u64>,
    ready: Vec<bool>,
    critical: Vec<bool>,
    free: VecDeque<PhysReg>,
    critical_in_use: usize,
    critical_limit: usize,
}

impl RegFile {
    /// Creates a PRF with `size` registers, all free.
    pub fn new(size: usize, critical_limit: usize) -> RegFile {
        RegFile {
            values: vec![0; size],
            ready: vec![false; size],
            critical: vec![false; size],
            free: (0..size as u32).map(PhysReg).collect(),
            critical_in_use: 0,
            critical_limit,
        }
    }

    /// Whether an [`alloc`](Self::alloc) with the given criticality would
    /// succeed (resource check before committing to a rename).
    pub fn can_alloc(&self, critical: bool) -> bool {
        !self.free.is_empty() && (!critical || self.critical_in_use < self.critical_limit)
    }

    /// Allocates a register. Returns `None` when the free list is empty or
    /// the critical partition limit is reached.
    pub fn alloc(&mut self, critical: bool) -> Option<PhysReg> {
        if critical && self.critical_in_use >= self.critical_limit {
            return None;
        }
        let p = self.free.pop_front()?;
        self.ready[p.0 as usize] = false;
        self.critical[p.0 as usize] = critical;
        if critical {
            self.critical_in_use += 1;
        }
        Some(p)
    }

    /// Returns a register to the free list.
    pub fn dealloc(&mut self, p: PhysReg) {
        if self.critical[p.0 as usize] {
            self.critical[p.0 as usize] = false;
            self.critical_in_use -= 1;
        }
        debug_assert!(!self.free.contains(&p), "double free of {p:?}");
        self.free.push_back(p);
    }

    /// Writes a value and marks the register ready. This is the sole
    /// false→true readiness transition after construction — the core's
    /// event-driven scheduler hangs its wakeup hook on exactly this edge.
    #[inline]
    pub fn write(&mut self, p: PhysReg, value: u64) {
        self.values[p.0 as usize] = value;
        self.ready[p.0 as usize] = true;
    }

    /// Reads a register's value.
    ///
    /// # Panics
    ///
    /// Debug-asserts the register is ready (scheduling bug otherwise).
    #[inline]
    pub fn read(&self, p: PhysReg) -> u64 {
        debug_assert!(self.ready[p.0 as usize], "read of not-ready {p:?}");
        self.values[p.0 as usize]
    }

    /// Whether the register's value has been produced.
    #[inline]
    pub fn is_ready(&self, p: PhysReg) -> bool {
        self.ready[p.0 as usize]
    }

    /// Number of free registers.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Number of critical-partition registers currently allocated.
    #[cfg(test)]
    pub fn critical_in_use(&self) -> usize {
        self.critical_in_use
    }

    /// Adjusts the critical partition limit (dynamic partitioning).
    #[allow(dead_code)] // RS limits track the ROB split today; PRF partitioning knob kept
    pub fn set_critical_limit(&mut self, limit: usize) {
        self.critical_limit = limit;
    }
}

/// A register alias table with per-entry poison bits.
///
/// The poison bit is the dependence-violation detector of §3.6/Fig. 11: the
/// regular RAT's poison bit for `r` is set when a *non-critical* uop renames
/// a write to `r`, and cleared when a critical uop's rename is replayed; a
/// replayed critical uop that *reads* a poisoned register has executed
/// incorrectly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) struct Rat {
    map: [PhysReg; NUM_ARCH_REGS],
    poison: [bool; NUM_ARCH_REGS],
}

impl Rat {
    /// Creates a RAT with all architectural registers mapped to the given
    /// initial physical registers.
    pub fn new(initial: [PhysReg; NUM_ARCH_REGS]) -> Rat {
        Rat {
            map: initial,
            poison: [false; NUM_ARCH_REGS],
        }
    }

    pub fn get(&self, r: ArchReg) -> PhysReg {
        self.map[r.index()]
    }

    /// Updates the mapping, returning the previous physical register.
    pub fn set(&mut self, r: ArchReg, p: PhysReg) -> PhysReg {
        std::mem::replace(&mut self.map[r.index()], p)
    }

    pub fn poisoned(&self, r: ArchReg) -> bool {
        self.poison[r.index()]
    }

    /// Sets or clears the poison bit, returning its previous state.
    pub fn set_poison(&mut self, r: ArchReg, v: bool) -> bool {
        std::mem::replace(&mut self.poison[r.index()], v)
    }

    /// Clears every poison bit (on CDF exit).
    pub fn clear_all_poison(&mut self) {
        self.poison = [false; NUM_ARCH_REGS];
    }

    /// Copies the register mappings (not the poison bits) from `other` —
    /// the critical RAT's "copy of the RAT after the last regular-mode
    /// instruction has been renamed" (§3.4).
    pub fn copy_maps_from(&mut self, other: &Rat) {
        self.map = other.map;
    }
}

/// Which RAT a rename-log entry applies to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum RatKind {
    Regular,
    Critical,
}

/// One undoable rename operation.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RenameLogEntry {
    pub seq: Seq,
    pub kind: RatKind,
    /// Destination register whose mapping changed, with its previous mapping
    /// and previous poison state. `None` for uops without a destination that
    /// still need log-tracked allocation (never happens today, kept simple).
    pub areg: Option<ArchReg>,
    pub prev_preg: PhysReg,
    pub prev_poison: bool,
    /// A physical register allocated by this operation, to be freed if the
    /// operation is undone. (`critical` records the PRF partition.)
    pub allocated: Option<(PhysReg, bool)>,
}

/// The rename undo log: supports walking back all rename operations younger
/// than a flush point, and pruning entries once their uop retires.
///
/// Entries are appended in rename order. Both RATs log into the same
/// structure so a flush unwinds them together in exact reverse order — this
/// is what makes CDF's dual-RAT recovery work without checkpoint storms.
#[derive(Clone, Debug, Default)]
pub(crate) struct RenameLog {
    entries: VecDeque<RenameLogEntry>,
}

impl RenameLog {
    pub fn new() -> RenameLog {
        RenameLog::default()
    }

    pub fn push(&mut self, e: RenameLogEntry) {
        self.entries.push_back(e);
    }

    /// Removes and returns (reverse insertion order) all entries with
    /// `seq > target`. The caller applies the undo to the RATs and the free
    /// list.
    ///
    /// The log is in *rename* order, not sequence order — the critical
    /// stream renames young uops before the regular stream renames older
    /// ones — so the whole log is scanned: young critical entries can be
    /// buried beneath later-pushed old regular entries.
    pub fn unwind(&mut self, target: Seq) -> Vec<RenameLogEntry> {
        let mut out = Vec::new();
        let mut kept = VecDeque::with_capacity(self.entries.len());
        while let Some(e) = self.entries.pop_back() {
            if e.seq > target {
                out.push(e);
            } else {
                kept.push_front(e);
            }
        }
        self.entries = kept;
        out
    }

    /// Drops entries for uops at or before `retired` (their mappings are
    /// architectural now). Stops at the first younger entry; entries of
    /// retired uops buried behind in-flight critical entries are dropped
    /// when those retire (the log stays bounded by the in-flight count).
    pub fn prune(&mut self, retired: Seq) {
        while let Some(front) = self.entries.front() {
            if front.seq <= retired {
                self.entries.pop_front();
            } else {
                break;
            }
        }
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn initial_rat(rf: &mut RegFile) -> Rat {
        let mut init = [PhysReg(0); NUM_ARCH_REGS];
        for (i, slot) in init.iter_mut().enumerate() {
            let p = rf.alloc(false).unwrap();
            rf.write(p, 0);
            *slot = p;
            let _ = i;
        }
        Rat::new(init)
    }

    #[test]
    fn alloc_write_read_cycle() {
        let mut rf = RegFile::new(8, 4);
        let p = rf.alloc(false).unwrap();
        assert!(!rf.is_ready(p));
        rf.write(p, 42);
        assert!(rf.is_ready(p));
        assert_eq!(rf.read(p), 42);
        assert_eq!(rf.free_count(), 7);
        rf.dealloc(p);
        assert_eq!(rf.free_count(), 8);
    }

    #[test]
    fn critical_limit_enforced() {
        let mut rf = RegFile::new(8, 2);
        let a = rf.alloc(true).unwrap();
        let _b = rf.alloc(true).unwrap();
        assert_eq!(rf.alloc(true), None, "critical limit");
        assert!(rf.alloc(false).is_some(), "non-critical unaffected");
        rf.dealloc(a);
        assert!(rf.alloc(true).is_some(), "freed critical slot reusable");
        assert_eq!(rf.critical_in_use(), 2);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut rf = RegFile::new(2, 2);
        rf.alloc(false).unwrap();
        rf.alloc(false).unwrap();
        assert_eq!(rf.alloc(false), None);
    }

    #[test]
    fn rat_set_returns_previous() {
        let mut rf = RegFile::new(64, 16);
        let mut rat = initial_rat(&mut rf);
        let r = ArchReg::R5;
        let old = rat.get(r);
        let p = rf.alloc(false).unwrap();
        assert_eq!(rat.set(r, p), old);
        assert_eq!(rat.get(r), p);
    }

    #[test]
    fn poison_bits() {
        let mut rf = RegFile::new(64, 16);
        let mut rat = initial_rat(&mut rf);
        assert!(!rat.poisoned(ArchReg::R3));
        assert!(!rat.set_poison(ArchReg::R3, true));
        assert!(rat.poisoned(ArchReg::R3));
        assert!(rat.set_poison(ArchReg::R3, false));
        rat.set_poison(ArchReg::R1, true);
        rat.clear_all_poison();
        assert!(!rat.poisoned(ArchReg::R1));
    }

    #[test]
    fn copy_maps_preserves_poison() {
        let mut rf = RegFile::new(64, 16);
        let rat_a = initial_rat(&mut rf);
        let mut rat_b = initial_rat(&mut rf);
        rat_b.set_poison(ArchReg::R2, true);
        rat_b.copy_maps_from(&rat_a);
        assert_eq!(rat_b.get(ArchReg::R2), rat_a.get(ArchReg::R2));
        assert!(rat_b.poisoned(ArchReg::R2), "poison untouched by map copy");
    }

    #[test]
    fn rename_log_unwind_order_and_prune() {
        let mut log = RenameLog::new();
        for i in 1..=5u64 {
            log.push(RenameLogEntry {
                seq: Seq(i),
                kind: RatKind::Regular,
                areg: Some(ArchReg::R1),
                prev_preg: PhysReg(i as u32),
                prev_poison: false,
                allocated: None,
            });
        }
        let undone = log.unwind(Seq(3));
        assert_eq!(undone.len(), 2);
        assert_eq!(undone[0].seq, Seq(5), "youngest first");
        assert_eq!(undone[1].seq, Seq(4));
        assert_eq!(log.len(), 3);
        log.prune(Seq(2));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn unwind_finds_buried_critical_entries() {
        // Rename order: critical seq 100 first, then regular seq 50.
        let mut log = RenameLog::new();
        let entry = |seq, kind| RenameLogEntry {
            seq: Seq(seq),
            kind,
            areg: Some(ArchReg::R1),
            prev_preg: PhysReg(0),
            prev_poison: false,
            allocated: None,
        };
        log.push(entry(100, RatKind::Critical));
        log.push(entry(50, RatKind::Regular));
        let undone = log.unwind(Seq(60));
        assert_eq!(undone.len(), 1, "buried critical entry must be found");
        assert_eq!(undone[0].seq, Seq(100));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn rename_log_round_trip_restores_rat() {
        // Property exercised more heavily in the proptest suite: applying the
        // unwind entries in order restores the exact RAT state.
        let mut rf = RegFile::new(64, 16);
        let mut rat = initial_rat(&mut rf);
        let mut log = RenameLog::new();
        let snapshot = rat.clone();
        for i in 1..=10u64 {
            let r = ArchReg::new((i % 4) as usize).unwrap();
            let p = rf.alloc(false).unwrap();
            let prev = rat.set(r, p);
            let prev_poison = rat.set_poison(r, i % 2 == 0);
            log.push(RenameLogEntry {
                seq: Seq(i),
                kind: RatKind::Regular,
                areg: Some(r),
                prev_preg: prev,
                prev_poison,
                allocated: Some((p, false)),
            });
        }
        for e in log.unwind(Seq(0)) {
            let r = e.areg.unwrap();
            rat.set(r, e.prev_preg);
            rat.set_poison(r, e.prev_poison);
            if let Some((p, _)) = e.allocated {
                rf.dealloc(p);
            }
        }
        assert_eq!(rat, snapshot);
        assert_eq!(rf.free_count(), 64 - NUM_ARCH_REGS);
    }
}
