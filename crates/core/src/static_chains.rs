//! Compiler-assisted chain seeding — the paper's §6 future-work extension.
//!
//! "While compilers cannot identify critical instructions and find the
//! optimal level of loop unrolling statically, they can be used to augment
//! CDF by statically generating a set of possible chains that CDF can then
//! choose to fetch and execute at runtime. This can help reduce the hardware
//! overhead and complexity of CDF significantly."
//!
//! This module implements that augmentation path: given *seed* instructions
//! (e.g. loads a compiler's profile pass flagged as delinquent), it computes
//! their static backward register slices over the program text — the static
//! analogue of the Fill Buffer's backwards dataflow walk — and produces the
//! per-basic-block criticality masks that [`crate::Core::preinstall_chains`]
//! installs directly into the Critical Uop Cache and Mask Cache. The runtime
//! machinery (CCTs, walks, density guards, violations) still runs and keeps
//! correcting the static guess; seeding only removes the cold-start training
//! delay.

use cdf_isa::{Pc, Program};

/// Computes per-block criticality masks for the static backward slices of
/// `seeds`.
///
/// The slice walks the program text backwards from each seed (the linear
/// order is the static analogue of the dynamic retire order inside a loop
/// body), accumulating the live register set exactly like the Fill Buffer
/// walk; it is capped at `max_chain` uops per seed, mirroring the finite
/// Fill Buffer. Every block between the oldest marked uop and the youngest
/// seed receives an entry (possibly with an empty mask) so the critical
/// fetch logic can carry control flow and timestamps across non-critical
/// blocks.
///
/// Returns `(block_start, block_len, mask)` triples, mask bit *i* marking
/// offset *i* critical. Blocks longer than 64 uops only mark their first 64
/// offsets (the Mask Cache storage limit).
///
/// ```
/// use cdf_core::static_chains::static_critical_masks;
/// use cdf_isa::{ProgramBuilder, ArchReg::*, Pc};
///
/// let mut b = ProgramBuilder::new();
/// b.movi(R1, 0x1000);          // pc0: in the slice (produces R1)
/// b.addi(R9, R9, 1);           // pc1: NOT in the slice
/// b.load(R2, R1, 0);           // pc2: the seed
/// b.halt();
/// let p = b.build().unwrap();
/// let masks = static_critical_masks(&p, &[Pc::new(2)], 64);
/// let (_, _, mask) = masks.iter().find(|(b, _, _)| b.index() == 0).unwrap();
/// assert_eq!(*mask, 0b101);
/// ```
pub fn static_critical_masks(
    program: &Program,
    seeds: &[Pc],
    max_chain: usize,
) -> Vec<(Pc, u32, u64)> {
    let mut marked = vec![false; program.len()];
    let mut touched = vec![false; program.len()];

    let n = program.len();
    for &seed in seeds {
        if seed.index() >= n {
            continue;
        }
        // Grow-only fixed point: a uop is in the slice if it writes any
        // register the slice reads. Unlike the dynamic walk, the static
        // slice must NOT kill liveness at a redefinition — across loop
        // iterations *both* writers of an induction variable (the preamble
        // init and the loop-carried increment) feed the seed, and a kill at
        // the init would hide the increment from a linear backward pass.
        // Over-marking is corrected at runtime by the Fill Buffer walks.
        let mut live = program.uop(seed).srcs();
        let mut budget = max_chain.saturating_sub(1);
        marked[seed.index()] = true;
        touched[seed.index()] = true;
        loop {
            let mut changed = false;
            for i in (0..n).rev() {
                touched[i] = true;
                if budget == 0 {
                    break;
                }
                if marked[i] {
                    continue;
                }
                let uop = program.uop(Pc::new(i as u32));
                if uop.dst_set().intersects(live) {
                    marked[i] = true;
                    live = live.union(uop.srcs());
                    budget -= 1;
                    changed = true;
                }
            }
            if !changed || budget == 0 {
                break;
            }
        }
    }

    // No seed produced a slice: nothing to install.
    if !touched.iter().any(|&t| t) {
        return Vec::new();
    }

    // Emit an entry for *every* block of the function body — blocks with no
    // marked uops get an empty mask. The critical fetch logic needs every
    // block's length and terminator to skip timestamps and carry control
    // flow through non-critical code; covering only the slice's own blocks
    // would make it fall out of CDF mode at the first unmarked block of the
    // loop (exactly what the dynamic walk's empty traces prevent).
    program
        .blocks()
        .iter()
        .map(|block| {
            let start = block.start.index();
            let mut mask = 0u64;
            for o in 0..(block.len as usize).min(64) {
                if marked[start + o] {
                    mask |= 1 << o;
                }
            }
            (block.start, block.len, mask)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdf_isa::{ArchReg::*, ProgramBuilder};

    fn loop_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.movi(R1, 0); // i
        b.movi(R2, 100); // bound
        b.movi(R3, 0x1000); // base
        let top = b.label("top");
        b.bind(top).unwrap();
        b.addi(R9, R9, 7); // filler (not in any slice)
        b.load_idx(R4, R3, R1, 8, 0); // seed: a[i]
        b.add(R5, R4, R9); // consumer (not in the slice)
        b.addi(R1, R1, 1); // feeds the seed's address next iteration
        b.br(cdf_isa::Cond::Ltu, R1, R2, top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn slice_includes_address_producers_only() {
        let p = loop_program();
        let seed = Pc::new(4); // the load
        let masks = static_critical_masks(&p, &[seed], 64);
        // Loop block starts at pc3 with len 5: [addi R9, load, add R5, addi R1, br].
        let (_, len, mask) = masks
            .iter()
            .find(|(b, _, _)| b.index() == 3)
            .expect("loop block present");
        assert_eq!(*len, 5);
        assert_eq!(mask & 0b00010, 0b00010, "the seed load is marked");
        assert_eq!(mask & 0b00001, 0, "filler addi R9 is not marked");
        assert_eq!(mask & 0b00100, 0, "the consumer is not marked");
        // Preamble block(s) carry the base/index producers.
        let (_, _, pre_mask) = masks
            .iter()
            .find(|(b, _, _)| b.index() == 0)
            .expect("preamble present");
        assert_eq!(
            pre_mask & 0b101,
            0b101,
            "movi R1 and movi R3 are in the slice"
        );
    }

    #[test]
    fn chain_budget_caps_slice() {
        let p = loop_program();
        let masks = static_critical_masks(&p, &[Pc::new(4)], 1);
        let total: u32 = masks.iter().map(|(_, _, m)| m.count_ones()).sum();
        assert_eq!(total, 1, "budget of 1 marks only the seed");
    }

    #[test]
    fn out_of_range_seed_is_ignored() {
        let p = loop_program();
        assert!(static_critical_masks(&p, &[Pc::new(999)], 64).is_empty());
    }

    #[test]
    fn whole_body_covered_with_empty_masks() {
        // A seed at pc0 marks only block 0, but every block gets an entry
        // (empty masks carry control flow for the critical fetch logic).
        let p = loop_program();
        let masks = static_critical_masks(&p, &[Pc::new(0)], 64);
        assert_eq!(masks.len(), p.blocks().len());
        for (b, _, mask) in &masks {
            if b.index() != 0 {
                assert_eq!(*mask, 0, "only block 0 carries marks");
            }
        }
    }

    #[test]
    fn no_valid_seeds_installs_nothing() {
        let p = loop_program();
        assert!(static_critical_masks(&p, &[], 64).is_empty());
    }
}
