//! A DDR4-style main-memory timing model (the Ramulator substitute).

use crate::{line_addr, LINE_BYTES};

/// DRAM organization and timing, in **core cycles**.
///
/// The paper models DDR4_2400R (1 rank, 2 channels, 4 bank groups and 4 banks
/// per channel, tRP-tCL-tRCD = 16-16-16 DRAM cycles) behind a 3.2 GHz core.
/// One DDR4-2400 command cycle (tCK = 0.833 ns) is ≈ 2.67 core cycles, so the
/// 16-cycle DRAM timings become ≈ 43 core cycles each, and the 4-tCK data
/// burst for a 64B line occupies the channel bus for ≈ 11 core cycles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DramConfig {
    /// Number of channels.
    pub channels: usize,
    /// Bank groups per channel.
    pub bank_groups: usize,
    /// Banks per bank group.
    pub banks_per_group: usize,
    /// Row-precharge latency in core cycles (tRP).
    pub t_rp: u64,
    /// RAS-to-CAS latency in core cycles (tRCD).
    pub t_rcd: u64,
    /// CAS latency in core cycles (tCL).
    pub t_cl: u64,
    /// Data-bus occupancy of one 64B burst in core cycles.
    pub burst: u64,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        DramConfig {
            channels: 2,
            bank_groups: 4,
            banks_per_group: 4,
            t_rp: 43,
            t_rcd: 43,
            t_cl: 43,
            burst: 11,
            row_bytes: 8192,
        }
    }
}

impl DramConfig {
    /// Total banks across all channels.
    pub fn total_banks(&self) -> usize {
        self.channels * self.bank_groups * self.banks_per_group
    }

    /// Unloaded row-hit read latency in core cycles.
    pub fn row_hit_latency(&self) -> u64 {
        self.t_cl + self.burst
    }

    /// Unloaded row-conflict read latency in core cycles.
    pub fn row_conflict_latency(&self) -> u64 {
        self.t_rp + self.t_rcd + self.t_cl + self.burst
    }
}

/// Counters exposed by the DRAM model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DramStats {
    /// Read (line fetch) requests serviced.
    pub reads: u64,
    /// Write (writeback) requests serviced.
    pub writes: u64,
    /// Reads that hit an open row.
    pub row_hits: u64,
    /// Reads that found the bank closed (empty) — tRCD+tCL.
    pub row_empty: u64,
    /// Reads that conflicted with a different open row — tRP+tRCD+tCL.
    pub row_conflicts: u64,
}

impl DramStats {
    /// Total requests of both kinds.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    /// Cycle at which the bank can accept the next command.
    next_free: u64,
}

/// Main-memory timing model with per-bank row buffers and per-channel data
/// buses (an issue-time approximation of FR-FCFS scheduling: requests see the
/// row state left by earlier requests and queue behind bank/bus busy time).
///
/// ```
/// use cdf_mem::{Dram, DramConfig};
/// let cfg = DramConfig::default();
/// let mut d = Dram::new(cfg);
/// let first = d.read(0x0, 0);
/// assert_eq!(first, cfg.t_rcd + cfg.t_cl + cfg.burst); // bank empty
/// // Stride of channels x bank-groups x banks lines lands in the same
/// // bank and row: a row-buffer hit.
/// let second = d.read(2 * 4 * 4 * 64, first);
/// assert_eq!(second - first, cfg.row_hit_latency());
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    /// Per-channel cycle at which the data bus frees up.
    bus_free: Vec<u64>,
    /// Per-channel cycles of data-bus occupancy accumulated so far (every
    /// burst adds `cfg.burst`) — the numerator of channel utilization.
    busy: Vec<u64>,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM model.
    pub fn new(cfg: DramConfig) -> Dram {
        Dram {
            banks: vec![Bank::default(); cfg.total_banks()],
            bus_free: vec![0; cfg.channels],
            busy: vec![0; cfg.channels],
            cfg,
            stats: DramStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Address mapping: line-interleaved across channels, then bank groups,
    /// then banks; row = high bits. Line-interleaving maximizes channel and
    /// bank parallelism for streaming, matching typical DDR4 controllers.
    fn map(&self, addr: u64) -> (usize, usize, u64) {
        let line = line_addr(addr) / LINE_BYTES;
        let ch = (line as usize) % self.cfg.channels;
        let rest = line / self.cfg.channels as u64;
        let banks_per_ch = self.cfg.bank_groups * self.cfg.banks_per_group;
        let bank_in_ch = (rest as usize) % banks_per_ch;
        let row = rest / banks_per_ch as u64 / (self.cfg.row_bytes / LINE_BYTES);
        (ch, ch * banks_per_ch + bank_in_ch, row)
    }

    /// Services a 64B read at `addr` issued at cycle `now`; returns the cycle
    /// at which the data has fully transferred.
    pub fn read(&mut self, addr: u64, now: u64) -> u64 {
        self.stats.reads += 1;
        self.request(addr, now)
    }

    /// Services a 64B writeback at `addr` issued at cycle `now`; returns the
    /// completion cycle (callers typically fire-and-forget, but the bus and
    /// bank time is consumed either way).
    pub fn write(&mut self, addr: u64, now: u64) -> u64 {
        self.stats.writes += 1;
        self.request(addr, now)
    }

    fn request(&mut self, addr: u64, now: u64) -> u64 {
        let (ch, bank_idx, row) = self.map(addr);
        let bank = &mut self.banks[bank_idx];
        let start = now.max(bank.next_free);
        let access = match bank.open_row {
            Some(r) if r == row => {
                self.stats.row_hits += 1;
                self.cfg.t_cl
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cl
            }
            None => {
                self.stats.row_empty += 1;
                self.cfg.t_rcd + self.cfg.t_cl
            }
        };
        bank.open_row = Some(row);
        bank.next_free = start + access;
        let data_ready = start + access;
        let bus_start = data_ready.max(self.bus_free[ch]);
        self.bus_free[ch] = bus_start + self.cfg.burst;
        self.busy[ch] += self.cfg.burst;
        bus_start + self.cfg.burst
    }

    /// Counters since construction.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Accumulated data-bus busy cycles per channel. Dividing by elapsed
    /// cycles gives channel utilization — the bandwidth-contention signal
    /// multi-core mixes report.
    pub fn channel_busy(&self) -> &[u64] {
        &self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::default()
    }

    #[test]
    fn row_hit_vs_conflict() {
        let mut d = Dram::new(cfg());
        let c = cfg();
        let t1 = d.read(0x0, 0); // row empty
        assert_eq!(t1, c.t_rcd + c.t_cl + c.burst);
        // Same channel+bank+row (next line in row with stride ch*banks*64).
        let stride = (c.channels * c.bank_groups * c.banks_per_group) as u64 * LINE_BYTES;
        let t2 = d.read(stride, t1);
        assert_eq!(t2 - t1, c.row_hit_latency());
        // Different row, same bank: conflict.
        let row_stride = stride * (c.row_bytes / LINE_BYTES);
        let t3 = d.read(row_stride, t2);
        assert_eq!(t3 - t2, c.row_conflict_latency());
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_conflicts, 1);
        assert_eq!(d.stats().row_empty, 1);
    }

    #[test]
    fn bank_parallelism_overlaps() {
        let mut d = Dram::new(cfg());
        let c = cfg();
        // Two requests to different channels at the same cycle overlap fully.
        let t1 = d.read(0x0, 0);
        let t2 = d.read(LINE_BYTES, 0); // next line = other channel
        assert_eq!(t1, t2, "independent channels service in parallel");
        assert!(t1 < 2 * c.row_conflict_latency());
    }

    #[test]
    fn same_bank_serializes() {
        let mut d = Dram::new(cfg());
        let c = cfg();
        let stride = (c.channels * c.bank_groups * c.banks_per_group) as u64 * LINE_BYTES;
        let t1 = d.read(0x0, 0);
        let t2 = d.read(stride, 0); // same bank, same row, issued same cycle
        assert!(t2 > t1, "bank busy time serializes: {t1} vs {t2}");
    }

    #[test]
    fn channel_bus_limits_bandwidth() {
        let mut d = Dram::new(cfg());
        let c = cfg();
        // Saturate one channel with row hits from many different banks mapping
        // to channel 0: lines at channel stride 2 with even line index.
        let mut done = Vec::new();
        for i in 0..32u64 {
            done.push(d.read(i * 2 * LINE_BYTES, 0));
        }
        let span = done.iter().max().unwrap() - done.iter().min().unwrap();
        assert!(
            span >= 31 * c.burst - c.burst,
            "bus must serialize bursts: span {span}"
        );
    }

    #[test]
    fn writes_counted_separately() {
        let mut d = Dram::new(cfg());
        d.write(0x0, 0);
        d.read(0x40, 0);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().total(), 2);
    }

    #[test]
    fn channel_busy_accumulates_bursts() {
        let mut d = Dram::new(cfg());
        let c = cfg();
        d.read(0x0, 0); // even line → channel 0
        d.read(LINE_BYTES, 0); // odd line → channel 1
        d.read(0x0, 1000);
        assert_eq!(d.channel_busy(), &[2 * c.burst, c.burst]);
        assert_eq!(
            d.channel_busy().iter().sum::<u64>(),
            d.stats().total() * c.burst,
            "every request occupies exactly one burst on exactly one channel"
        );
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut d = Dram::new(cfg());
            (0..100u64).map(|i| d.read(i * 192, i)).sum::<u64>()
        };
        assert_eq!(run(), run());
    }
}
