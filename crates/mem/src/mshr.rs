//! Miss Status Holding Registers.

use std::collections::HashMap;

/// Outcome of trying to allocate an MSHR for a line miss.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MshrOutcome {
    /// The line already has an outstanding miss; the new request merges and
    /// completes at the recorded cycle.
    Merged(u64),
    /// A new entry was allocated.
    Allocated,
    /// All entries are in use — the requester must retry later. This is the
    /// mechanism that bounds memory-level parallelism.
    Full,
}

/// A fixed-capacity set of Miss Status Holding Registers keyed by line
/// address.
///
/// Entries are lazily expired: any operation first drops entries whose
/// completion cycle has passed relative to the supplied `now`.
///
/// ```
/// use cdf_mem::{Mshr, MshrOutcome};
/// let mut m = Mshr::new(2);
/// assert_eq!(m.try_alloc(0x40, 0, 100), MshrOutcome::Allocated);
/// assert_eq!(m.try_alloc(0x40, 5, 999), MshrOutcome::Merged(100));
/// assert_eq!(m.try_alloc(0x80, 5, 200), MshrOutcome::Allocated);
/// assert_eq!(m.try_alloc(0xC0, 5, 300), MshrOutcome::Full);
/// assert_eq!(m.try_alloc(0xC0, 150, 300), MshrOutcome::Allocated); // 0x40 expired
/// ```
#[derive(Clone, Debug)]
pub struct Mshr {
    capacity: usize,
    /// line address → completion cycle.
    entries: HashMap<u64, u64>,
}

impl Mshr {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Mshr {
        assert!(capacity > 0, "MSHR capacity must be nonzero");
        Mshr {
            capacity,
            entries: HashMap::with_capacity(capacity),
        }
    }

    fn expire(&mut self, now: u64) {
        self.entries.retain(|_, &mut done| done > now);
    }

    /// Attempts to track a miss of `line` that will complete at
    /// `completes_at`. See [`MshrOutcome`].
    pub fn try_alloc(&mut self, line: u64, now: u64, completes_at: u64) -> MshrOutcome {
        self.expire(now);
        if let Some(&done) = self.entries.get(&line) {
            return MshrOutcome::Merged(done);
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.insert(line, completes_at);
        MshrOutcome::Allocated
    }

    /// The completion cycle of an outstanding miss of `line`, if any.
    pub fn outstanding(&self, line: u64, now: u64) -> Option<u64> {
        self.entries.get(&line).copied().filter(|&done| done > now)
    }

    /// Number of outstanding (unexpired) misses at `now`.
    pub fn len(&self, now: u64) -> usize {
        self.entries.values().filter(|&&done| done > now).count()
    }

    /// Whether no misses are outstanding at `now`.
    pub fn is_empty(&self, now: u64) -> bool {
        self.len(now) == 0
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The soonest cycle at which an outstanding entry completes and frees
    /// its register — the retry hint carried by MSHR-full backpressure.
    pub fn earliest_release(&self, now: u64) -> Option<u64> {
        self.entries
            .values()
            .copied()
            .filter(|&done| done > now)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_returns_original_completion() {
        let mut m = Mshr::new(4);
        m.try_alloc(0x40, 0, 50);
        assert_eq!(m.try_alloc(0x40, 10, 999), MshrOutcome::Merged(50));
    }

    #[test]
    fn full_then_expire() {
        let mut m = Mshr::new(1);
        assert_eq!(m.try_alloc(0x0, 0, 10), MshrOutcome::Allocated);
        assert_eq!(m.try_alloc(0x40, 5, 20), MshrOutcome::Full);
        assert_eq!(m.try_alloc(0x40, 10, 20), MshrOutcome::Allocated);
    }

    #[test]
    fn outstanding_and_len() {
        let mut m = Mshr::new(4);
        m.try_alloc(0x0, 0, 10);
        m.try_alloc(0x40, 0, 20);
        assert_eq!(m.outstanding(0x0, 5), Some(10));
        assert_eq!(
            m.outstanding(0x0, 10),
            None,
            "completion cycle itself counts as done"
        );
        assert_eq!(m.len(5), 2);
        assert_eq!(m.len(15), 1);
        assert!(m.is_empty(25));
        assert_eq!(m.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        Mshr::new(0);
    }

    #[test]
    fn earliest_release_tracks_minimum() {
        let mut m = Mshr::new(4);
        assert_eq!(m.earliest_release(0), None);
        m.try_alloc(0x0, 0, 30);
        m.try_alloc(0x40, 0, 10);
        assert_eq!(m.earliest_release(0), Some(10));
        assert_eq!(m.earliest_release(10), Some(30), "expired entries ignored");
        assert_eq!(m.earliest_release(30), None);
    }
}
