//! A generic set-associative cache with true-LRU replacement.

use crate::{line_addr, LINE_BYTES};

/// Geometry of a [`Cache`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets implied by capacity, ways, and the 64B line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not produce a power-of-two set count.
    pub fn sets(&self) -> usize {
        let sets = self.capacity_bytes / (self.ways as u64 * LINE_BYTES);
        assert!(
            sets.is_power_of_two() && sets > 0,
            "cache geometry must give a power-of-two number of sets, got {sets}"
        );
        sets as usize
    }
}

#[derive(Clone, Copy, Default, Debug)]
struct Line {
    tag: u64,
    dirty: bool,
    /// Set by prefetch fills; cleared (and counted) on first demand hit —
    /// the accuracy signal for Feedback Directed Prefetching.
    prefetched: bool,
    valid: bool,
}

/// What a fill evicted, if anything.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Eviction {
    /// Line address of the victim.
    pub line_addr: u64,
    /// Whether the victim was dirty (needs a writeback).
    pub dirty: bool,
}

/// Result of a demand access (crate-internal; the public API is
/// [`crate::MemoryHierarchy`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct AccessInfo {
    pub hit: bool,
    /// The hit line had been brought in by the prefetcher and this is its
    /// first demand use.
    pub first_use_of_prefetch: bool,
}

/// A set-associative, write-back, write-allocate cache model.
///
/// Only tags and metadata are modeled — data values live in the functional
/// memory image. Replacement is true LRU, maintained by position within the
/// set (index 0 = MRU).
///
/// ```
/// use cdf_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig { capacity_bytes: 4096, ways: 4 });
/// assert!(!c.probe(0x1000));
/// c.fill(0x1000, false);
/// assert!(c.probe(0x1000));
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Cache {
        let sets = cfg.sets();
        Cache {
            sets: vec![vec![Line::default(); cfg.ways]; sets],
            set_mask: sets as u64 - 1,
            cfg,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_of(&self, addr: u64) -> usize {
        ((line_addr(addr) / LINE_BYTES) & self.set_mask) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        line_addr(addr) / LINE_BYTES / (self.set_mask + 1)
    }

    /// Tag check without any state change (no LRU update, no stats).
    pub fn probe(&self, addr: u64) -> bool {
        let tag = self.tag_of(addr);
        self.sets[self.set_of(addr)]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Demand access: updates LRU and hit/miss statistics; marks the line
    /// dirty on a write hit. Does **not** allocate on a miss — the caller
    /// fills after the miss is serviced (see [`fill`](Cache::fill)).
    pub(crate) fn access(&mut self, addr: u64, is_write: bool) -> AccessInfo {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|l| l.valid && l.tag == tag) {
            let mut line = ways.remove(pos);
            let first_use = line.prefetched;
            line.prefetched = false;
            line.dirty |= is_write;
            ways.insert(0, line);
            self.hits += 1;
            AccessInfo {
                hit: true,
                first_use_of_prefetch: first_use,
            }
        } else {
            self.misses += 1;
            AccessInfo {
                hit: false,
                first_use_of_prefetch: false,
            }
        }
    }

    /// Fills the line containing `addr` as MRU, returning the eviction if a
    /// valid line was displaced. `prefetched` tags prefetch fills for FDP
    /// accounting.
    pub fn fill_tagged(&mut self, addr: u64, dirty: bool, prefetched: bool) -> Option<Eviction> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let shift = self.set_mask + 1;
        let ways = &mut self.sets[set];
        // Refill of a resident line just refreshes metadata.
        if let Some(pos) = ways.iter().position(|l| l.valid && l.tag == tag) {
            let mut line = ways.remove(pos);
            line.dirty |= dirty;
            ways.insert(0, line);
            return None;
        }
        let victim = ways.pop().expect("ways > 0");
        let evicted = victim.valid.then(|| Eviction {
            line_addr: (victim.tag * shift + set as u64) * LINE_BYTES,
            dirty: victim.dirty,
        });
        ways.insert(
            0,
            Line {
                tag,
                dirty,
                prefetched,
                valid: true,
            },
        );
        evicted
    }

    /// Fills the line containing `addr` as a demand fill.
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<Eviction> {
        self.fill_tagged(addr, dirty, false)
    }

    /// Invalidates the line containing `addr`. Returns `Some(dirty)` if the
    /// line was present (so an inclusive outer level can write back dirty
    /// inner copies), `None` if absent.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|l| l.valid && l.tag == tag) {
            ways[pos].valid = false;
            Some(ways[pos].dirty)
        } else {
            None
        }
    }

    /// `(hits, misses)` of demand accesses since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B = 256B.
        Cache::new(CacheConfig {
            capacity_bytes: 256,
            ways: 2,
        })
    }

    #[test]
    fn geometry() {
        let c = Cache::new(CacheConfig {
            capacity_bytes: 32 * 1024,
            ways: 8,
        });
        assert_eq!(c.config().sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bad_geometry_panics() {
        let _ = CacheConfig {
            capacity_bytes: 3 * 1024,
            ways: 8,
        }
        .sets();
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000, false).hit);
        assert_eq!(c.fill(0x1000, false), None);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x103F, false).hit, "same 64B line");
        assert!(!c.access(0x1040, false).hit, "next line");
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 lines: line_addr multiples of 128 (2 sets).
        c.fill(0x0, false);
        c.fill(0x80, false);
        c.access(0x0, false); // promote 0x0
        let ev = c.fill(0x100, false).unwrap();
        assert_eq!(ev.line_addr, 0x80);
        assert!(!ev.dirty);
        assert!(c.probe(0x0));
        assert!(!c.probe(0x80));
    }

    #[test]
    fn dirty_writeback_on_eviction() {
        let mut c = tiny();
        c.fill(0x0, false);
        c.access(0x0, true); // write hit sets dirty
        c.fill(0x80, false);
        let ev = c.fill(0x100, false).unwrap();
        assert_eq!(ev.line_addr, 0x0);
        assert!(ev.dirty);
    }

    #[test]
    fn victim_address_reconstruction() {
        let mut c = tiny();
        // Fill three lines in set 1 (odd line index).
        c.fill(0x40, true);
        c.fill(0xC0, false);
        let ev = c.fill(0x140, false).unwrap();
        assert_eq!(ev.line_addr, 0x40);
        assert!(ev.dirty);
    }

    #[test]
    fn refill_resident_line_no_eviction() {
        let mut c = tiny();
        c.fill(0x0, false);
        assert_eq!(c.fill(0x0, true), None);
        // After the refresh of 0x0, filling 0x80 makes 0x0 the LRU; the next
        // fill evicts it with the merged dirty bit.
        c.fill(0x80, false);
        let ev = c.fill(0x100, false).unwrap();
        assert_eq!(ev.line_addr, 0x0);
        assert!(ev.dirty, "dirty bit from the refill must be preserved");
    }

    /// Pins the fill-on-resident-line semantics the hierarchy's dirty-L1-
    /// victim pushdown relies on: no duplicate way is allocated, the line
    /// is promoted to MRU, the dirty bit is ORed in, and the prefetched
    /// tag survives untouched (audited for PR 6 — the pushdown path calls
    /// `fill` on a probed-hit LLC line on purpose, as a dirty merge).
    #[test]
    fn fill_on_resident_line_merges() {
        let mut c = tiny();
        c.fill_tagged(0x0, false, true); // prefetched, clean
        c.fill(0x80, false); // set 0 now full: [0x80, 0x0]
        assert_eq!(c.fill(0x0, true), None, "merge, not a second way");
        // 0x0 was promoted to MRU, so the next fill evicts 0x80 — proving
        // the set still holds exactly one copy of 0x0 and it is not LRU.
        let ev = c.fill(0x100, false).unwrap();
        assert_eq!(ev.line_addr, 0x80, "resident fill promotes to MRU");
        // The merged dirty bit and the original prefetched tag both held.
        let a = c.access(0x0, false);
        assert!(
            a.first_use_of_prefetch,
            "a dirty merge must not consume the FDP first-use tag"
        );
        c.fill(0x180, false);
        let ev = c.fill(0x100, false).unwrap();
        assert_eq!(ev.line_addr, 0x0);
        assert!(ev.dirty, "dirty bit from the merge must be preserved");
    }

    #[test]
    fn prefetch_first_use_flag() {
        let mut c = tiny();
        c.fill_tagged(0x0, false, true);
        let a = c.access(0x0, false);
        assert!(a.hit && a.first_use_of_prefetch);
        let b = c.access(0x0, false);
        assert!(b.hit && !b.first_use_of_prefetch, "only first use counts");
    }

    #[test]
    fn invalidate() {
        let mut c = tiny();
        c.fill(0x0, false);
        c.access(0x0, true); // dirty it
        assert_eq!(c.invalidate(0x0), Some(true));
        assert!(!c.probe(0x0));
        assert_eq!(c.invalidate(0x0), None);
        c.fill(0x40, false);
        assert_eq!(c.invalidate(0x40), Some(false));
    }

    #[test]
    fn probe_does_not_touch_lru_or_stats() {
        let mut c = tiny();
        c.fill(0x0, false);
        c.fill(0x80, false); // 0x80 MRU, 0x0 LRU
        assert!(c.probe(0x0)); // must not promote
        let ev = c.fill(0x100, false).unwrap();
        assert_eq!(ev.line_addr, 0x0);
        assert_eq!(c.stats(), (0, 0));
    }
}
