//! Event-wheel bookkeeping for the event-driven memory model.
//!
//! The reference hierarchy tracks outstanding misses with lazily-filtered
//! `HashMap`s and `Vec`s: every query rescans the container and compares
//! each completion cycle against `now`. That is O(capacity) per access and
//! per cycle. The structures here key the same state on completion cycles
//! in a min-heap instead, so expiry pops exactly the entries whose time has
//! come and every query is O(1) (map lookup / heap peek) amortized.
//!
//! Both implementations are kept compiled and runtime-selectable via
//! [`MemModelKind`](crate::MemModelKind); the `cdf-sim equiv --mem`
//! harness proves them bit-identical. The equivalence argument is small:
//! queries on the lazy structures filter by `done > now`, and the event
//! structures maintain the invariant that after `advance(now)` exactly the
//! entries with `done > now` remain — identical visible state as long as
//! `now` never moves backwards, which the core guarantees (all call sites
//! pass its monotonic cycle counter) and a debug watermark asserts.

use crate::mshr::MshrOutcome;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Event-driven Miss Status Holding Registers: the same visible semantics
/// as [`Mshr`](crate::Mshr) (lazy reference implementation), but entries
/// retire on a completion-cycle min-heap instead of being rescanned.
///
/// Requires monotonically non-decreasing `now` across calls; the lazy
/// implementation tolerates time moving backwards, this one asserts it
/// away (debug builds) because popped entries cannot be resurrected.
#[derive(Clone, Debug)]
pub struct EventMshr {
    capacity: usize,
    /// line address → completion cycle, entries with `done > watermark`.
    entries: HashMap<u64, u64>,
    /// Min-heap of `(completion cycle, line address)` mirroring `entries`.
    expiry: BinaryHeap<Reverse<(u64, u64)>>,
    /// Largest `now` seen; advance-only time assertion.
    watermark: u64,
}

impl EventMshr {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> EventMshr {
        assert!(capacity > 0, "MSHR capacity must be nonzero");
        EventMshr {
            capacity,
            entries: HashMap::with_capacity(capacity),
            expiry: BinaryHeap::with_capacity(capacity),
            watermark: 0,
        }
    }

    /// Pops every entry whose completion cycle has passed (the completion
    /// cycle itself counts as done, matching the reference `done > now`
    /// filter). `entries` and `expiry` stay in bijection: lines are
    /// inserted into both together and only removed here, and a line
    /// cannot be re-allocated while still present in `entries`.
    fn advance(&mut self, now: u64) {
        debug_assert!(
            now >= self.watermark,
            "EventMshr time moved backwards: {now} < {}",
            self.watermark
        );
        self.watermark = now;
        while let Some(&Reverse((done, line))) = self.expiry.peek() {
            if done > now {
                break;
            }
            self.expiry.pop();
            let removed = self.entries.remove(&line);
            debug_assert_eq!(removed, Some(done), "heap/map bijection");
        }
    }

    /// Attempts to track a miss of `line` completing at `completes_at`.
    /// Same contract as [`Mshr::try_alloc`](crate::Mshr::try_alloc).
    pub fn try_alloc(&mut self, line: u64, now: u64, completes_at: u64) -> MshrOutcome {
        self.advance(now);
        if let Some(&done) = self.entries.get(&line) {
            return MshrOutcome::Merged(done);
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.insert(line, completes_at);
        self.expiry.push(Reverse((completes_at, line)));
        MshrOutcome::Allocated
    }

    /// The completion cycle of an outstanding miss of `line`, if any.
    pub fn outstanding(&mut self, line: u64, now: u64) -> Option<u64> {
        self.advance(now);
        self.entries.get(&line).copied()
    }

    /// Number of outstanding misses at `now` — O(1) after the advance.
    pub fn len(&mut self, now: u64) -> usize {
        self.advance(now);
        self.entries.len()
    }

    /// Whether no misses are outstanding at `now`.
    pub fn is_empty(&mut self, now: u64) -> bool {
        self.len(now) == 0
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The soonest cycle at which an outstanding entry completes — a heap
    /// peek instead of the reference implementation's full-map minimum.
    pub fn earliest_release(&mut self, now: u64) -> Option<u64> {
        self.advance(now);
        self.expiry.peek().map(|&Reverse((done, _))| done)
    }
}

/// Outstanding-demand-miss tracker for MLP measurement (Fig. 14): a
/// completion-cycle min-heap, popped on advance, counted in O(1) — versus
/// the reference `Vec` that is `retain`ed on every insert and filtered on
/// every per-cycle sample.
#[derive(Clone, Debug, Default)]
pub struct EventOutstanding {
    heap: BinaryHeap<Reverse<u64>>,
}

impl EventOutstanding {
    /// Records a demand miss completing at `done` (`done` must lie in the
    /// future — DRAM completions always do).
    pub fn note(&mut self, done: u64) {
        self.heap.push(Reverse(done));
    }

    /// Number of demand misses still outstanding at `now`.
    pub fn outstanding(&mut self, now: u64) -> usize {
        while let Some(&Reverse(done)) = self.heap.peek() {
            if done > now {
                break;
            }
            self.heap.pop();
        }
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_doctest_sequence() {
        let mut m = EventMshr::new(2);
        assert_eq!(m.try_alloc(0x40, 0, 100), MshrOutcome::Allocated);
        assert_eq!(m.try_alloc(0x40, 5, 999), MshrOutcome::Merged(100));
        assert_eq!(m.try_alloc(0x80, 5, 200), MshrOutcome::Allocated);
        assert_eq!(m.try_alloc(0xC0, 5, 300), MshrOutcome::Full);
        assert_eq!(m.try_alloc(0xC0, 150, 300), MshrOutcome::Allocated); // 0x40 expired
    }

    #[test]
    fn completion_cycle_counts_as_done() {
        let mut m = EventMshr::new(4);
        m.try_alloc(0x0, 0, 10);
        assert_eq!(m.outstanding(0x0, 9), Some(10));
        assert_eq!(m.outstanding(0x0, 10), None);
        assert!(m.is_empty(10));
    }

    #[test]
    fn earliest_release_is_heap_top() {
        let mut m = EventMshr::new(4);
        assert_eq!(m.earliest_release(0), None);
        m.try_alloc(0x0, 0, 30);
        m.try_alloc(0x40, 0, 10);
        assert_eq!(m.earliest_release(0), Some(10));
        assert_eq!(m.earliest_release(10), Some(30));
        assert_eq!(m.earliest_release(30), None);
    }

    #[test]
    fn outstanding_set_counts_and_drains() {
        let mut s = EventOutstanding::default();
        s.note(10);
        s.note(20);
        s.note(20);
        assert_eq!(s.outstanding(5), 3);
        assert_eq!(s.outstanding(10), 2);
        assert_eq!(s.outstanding(19), 2);
        assert_eq!(s.outstanding(20), 0);
    }
}
