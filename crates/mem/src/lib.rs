//! # cdf-mem — the memory system of the CDF simulator
//!
//! Rebuilds the paper's memory substrate (Table 1): a 32KB L1 I-cache and
//! D-cache (2-cycle), a 1MB 16-way LLC (18-cycle), 64B lines, MSHRs, an
//! always-on 64-stream prefetcher throttled by Feedback Directed Prefetching,
//! and a DDR4-2400-style DRAM model (2 channels, 4 bank groups × 4 banks,
//! tRP-tCL-tRCD 16-16-16) standing in for Ramulator.
//!
//! The hierarchy is synchronous-completion: an access computes, at issue
//! time, the cycle at which its data will be ready, using per-bank and
//! per-channel busy tracking for queueing effects. Outstanding-miss limits
//! (the source of finite MLP) come from the MSHRs: when they are full the
//! access is [`AccessResult::Rejected`] carrying a typed [`MshrFull`] error
//! (which file was full, and the earliest cycle a slot frees) and the core
//! must retry — exactly the backpressure that caps memory-level parallelism
//! in a real machine. Admission is decided before any state changes, so a
//! rejected access perturbs nothing but the rejection counter and its
//! retry replays cleanly (each logical access is counted once and trains
//! the prefetcher once).
//!
//! Outstanding-miss bookkeeping comes in two runtime-selectable, bit-
//! identical implementations ([`MemModelKind`]): the lazy reference
//! (`HashMap`/`Vec` rescanned against `now` on every query) and the
//! event-driven default ([`EventMshr`]/[`EventOutstanding`] min-heaps
//! popped as completion cycles pass). DRAM bank/channel occupancy and
//! prefetcher training are already keyed by completion cycles and shared
//! verbatim between the two.
//!
//! ```
//! use cdf_mem::{MemoryHierarchy, MemConfig, AccessKind};
//!
//! let mut mem = MemoryHierarchy::new(MemConfig::default());
//! // First touch misses everywhere and goes to DRAM.
//! let out = mem
//!     .access(0x4000, AccessKind::Load, 0, false)
//!     .outcome()
//!     .expect("MSHRs empty, never rejected");
//! assert!(out.ready_at > 100);
//! // A later access to the same line hits in L1.
//! let hit = mem
//!     .access(0x4000, AccessKind::Load, out.ready_at, false)
//!     .outcome()
//!     .expect("hits are never backpressured");
//! assert_eq!(hit.ready_at, out.ready_at + mem.config().l1_latency);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod cache;
mod dram;
mod event;
mod hierarchy;
mod mshr;
mod prefetch;
pub mod prof;
mod shared;

pub use cache::{Cache, CacheConfig, Eviction};
pub use dram::{Dram, DramConfig, DramStats};
pub use event::{EventMshr, EventOutstanding};
pub use hierarchy::{
    AccessKind, AccessOutcome, AccessResult, HitLevel, MemConfig, MemModelKind, MemStats,
    MemoryHierarchy, MshrFull, MshrLevel,
};
pub use mshr::{Mshr, MshrOutcome};
pub use prefetch::{PrefetcherConfig, StreamPrefetcher};
pub use prof::MemProfReport;
pub use shared::{CoreShareStats, MultiCoreMemory, SharedMemConfig};

/// Cache line size in bytes used throughout the hierarchy (Table 1: 64B).
pub const LINE_BYTES: u64 = 64;

/// Rounds an address down to its cache-line address.
pub fn line_addr(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}
