//! Stream prefetcher with Feedback Directed Prefetching (FDP) throttling.

use crate::LINE_BYTES;

/// Configuration for [`StreamPrefetcher`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PrefetcherConfig {
    /// Number of stream trackers (Table 1: 64 streams).
    pub streams: usize,
    /// Initial/maximum prefetch degree (lines issued per trigger).
    pub max_degree: u32,
    /// Accesses between FDP feedback evaluations.
    pub fdp_interval: u64,
    /// Enable the prefetcher at all.
    pub enabled: bool,
}

impl Default for PrefetcherConfig {
    fn default() -> PrefetcherConfig {
        PrefetcherConfig {
            streams: 64,
            max_degree: 4,
            fdp_interval: 8192,
            enabled: true,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Stream {
    page: u64,
    last_line: u64,
    /// +1 ascending, -1 descending, 0 untrained.
    dir: i64,
    confidence: u8,
    valid: bool,
    lru: u64,
}

/// A 4KB-page-based stream prefetcher.
///
/// Trained on demand accesses that miss in the L1D; after two same-direction
/// accesses within a page it becomes confident and emits `degree` prefetch
/// line addresses ahead of the demand stream. Feedback Directed Prefetching
/// (Srinath et al., the throttling scheme the paper cites in Table 1)
/// periodically compares useful prefetches against issued prefetches and
/// raises or lowers the degree.
///
/// ```
/// use cdf_mem::{StreamPrefetcher, PrefetcherConfig};
/// let mut p = StreamPrefetcher::new(PrefetcherConfig::default());
/// assert!(p.on_demand_miss(0x1000).is_empty()); // first touch: trains only
/// let pf = p.on_demand_miss(0x1040);            // second: direction known
/// assert!(!pf.is_empty());
/// assert_eq!(pf[0], 0x1080);
/// ```
#[derive(Clone, Debug)]
pub struct StreamPrefetcher {
    cfg: PrefetcherConfig,
    table: Vec<Stream>,
    degree: u32,
    lru_clock: u64,
    accesses: u64,
    issued_window: u64,
    useful_window: u64,
    issued_total: u64,
    useful_total: u64,
}

impl StreamPrefetcher {
    /// Creates a prefetcher.
    pub fn new(cfg: PrefetcherConfig) -> StreamPrefetcher {
        StreamPrefetcher {
            table: vec![Stream::default(); cfg.streams],
            degree: cfg.max_degree.max(1),
            lru_clock: 0,
            accesses: 0,
            issued_window: 0,
            useful_window: 0,
            issued_total: 0,
            useful_total: 0,
            cfg,
        }
    }

    /// Current prefetch degree (after FDP throttling).
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued_total
    }

    /// Total prefetched lines that saw a demand hit before eviction.
    pub fn useful(&self) -> u64 {
        self.useful_total
    }

    /// Reports a demand access to a line the prefetcher had brought in
    /// (first use). Feeds FDP accuracy.
    pub fn on_prefetch_hit(&mut self) {
        self.useful_window += 1;
        self.useful_total += 1;
    }

    /// Trains on a demand L1D miss at `addr`; returns line addresses to
    /// prefetch (possibly empty).
    pub fn on_demand_miss(&mut self, addr: u64) -> Vec<u64> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        self.accesses += 1;
        self.lru_clock += 1;
        if self.accesses.is_multiple_of(self.cfg.fdp_interval) {
            self.fdp_adjust();
        }

        let page = addr >> 12;
        let line = addr / LINE_BYTES;
        // Find the tracker for this page, or allocate the LRU one.
        let idx = match self.table.iter().position(|s| s.valid && s.page == page) {
            Some(i) => i,
            None => {
                let i = self
                    .table
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| if s.valid { s.lru } else { 0 })
                    .map(|(i, _)| i)
                    .expect("streams > 0");
                self.table[i] = Stream {
                    page,
                    last_line: line,
                    dir: 0,
                    confidence: 0,
                    valid: true,
                    lru: self.lru_clock,
                };
                return Vec::new();
            }
        };

        let s = &mut self.table[idx];
        s.lru = self.lru_clock;
        let dir: i64 = match line.cmp(&s.last_line) {
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
        };
        if dir == 0 {
            return Vec::new();
        }
        if s.dir == dir {
            s.confidence = (s.confidence + 1).min(3);
        } else {
            s.dir = dir;
            s.confidence = 1;
        }
        s.last_line = line;
        if s.confidence == 0 {
            return Vec::new();
        }
        let degree = self.degree as i64;
        let dir = s.dir;
        let base = line as i64;
        // Prefetches may cross page boundaries, so no page filter here.
        let out: Vec<u64> = (1..=degree)
            .map(|k| ((base + dir * k) as u64) * LINE_BYTES)
            .collect();
        self.issued_window += out.len() as u64;
        self.issued_total += out.len() as u64;
        out
    }

    /// FDP: raise degree when accurate, lower when polluting.
    fn fdp_adjust(&mut self) {
        if self.issued_window >= 32 {
            let acc = self.useful_window as f64 / self.issued_window as f64;
            if acc > 0.5 {
                self.degree = (self.degree + 1).min(self.cfg.max_degree);
            } else if acc < 0.2 {
                self.degree = (self.degree.saturating_sub(1)).max(1);
            }
        }
        self.issued_window = 0;
        self.useful_window = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StreamPrefetcher {
        StreamPrefetcher::new(PrefetcherConfig::default())
    }

    #[test]
    fn ascending_stream_detected() {
        let mut p = pf();
        assert!(p.on_demand_miss(0x1000).is_empty());
        let out = p.on_demand_miss(0x1040);
        assert_eq!(out.len(), p.degree() as usize);
        assert_eq!(out[0], 0x1080);
        assert!(out.windows(2).all(|w| w[1] == w[0] + LINE_BYTES));
    }

    #[test]
    fn descending_stream_detected() {
        let mut p = pf();
        p.on_demand_miss(0x2200);
        let out = p.on_demand_miss(0x21C0);
        assert_eq!(out[0], 0x2180);
    }

    #[test]
    fn direction_flip_resets_confidence_but_recovers() {
        let mut p = pf();
        p.on_demand_miss(0x1000);
        p.on_demand_miss(0x1040);
        // Flip direction: retrains within the page.
        let out = p.on_demand_miss(0x1000);
        assert!(!out.is_empty());
        assert_eq!(out[0], 0x1000 - LINE_BYTES);
    }

    #[test]
    fn same_line_repeat_is_ignored() {
        let mut p = pf();
        p.on_demand_miss(0x1000);
        assert!(p.on_demand_miss(0x1010).is_empty(), "same 64B line");
    }

    #[test]
    fn stream_table_replacement() {
        let mut p = StreamPrefetcher::new(PrefetcherConfig {
            streams: 2,
            ..PrefetcherConfig::default()
        });
        p.on_demand_miss(0x1000); // page 1 tracker
        p.on_demand_miss(0x5000); // page 5 tracker
        p.on_demand_miss(0x9000); // evicts LRU (page 1)
                                  // Page 1 must retrain from scratch.
        assert!(p.on_demand_miss(0x1040).is_empty());
    }

    #[test]
    fn fdp_throttles_useless_prefetching() {
        let mut p = StreamPrefetcher::new(PrefetcherConfig {
            fdp_interval: 64,
            ..PrefetcherConfig::default()
        });
        let initial = p.degree();
        // Generate lots of prefetches, none ever useful.
        for i in 0..1024u64 {
            p.on_demand_miss(0x10000 + i * LINE_BYTES);
        }
        assert!(p.degree() < initial, "degree should throttle down");
        assert_eq!(p.degree(), 1);
    }

    #[test]
    fn fdp_rewards_useful_prefetching() {
        let mut p = StreamPrefetcher::new(PrefetcherConfig {
            fdp_interval: 64,
            ..PrefetcherConfig::default()
        });
        // Drive degree down first.
        for i in 0..512u64 {
            p.on_demand_miss(0x10000 + i * LINE_BYTES);
        }
        assert_eq!(p.degree(), 1);
        // Now every prefetch is useful.
        for i in 512..2048u64 {
            for _ in 0..2 {
                p.on_prefetch_hit();
            }
            p.on_demand_miss(0x10000 + i * LINE_BYTES);
        }
        assert!(p.degree() > 1, "degree should ramp back up");
    }

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut p = StreamPrefetcher::new(PrefetcherConfig {
            enabled: false,
            ..PrefetcherConfig::default()
        });
        p.on_demand_miss(0x1000);
        assert!(p.on_demand_miss(0x1040).is_empty());
        assert_eq!(p.issued(), 0);
    }
}
