//! The multi-core shared memory system: N private L1 slices in front of
//! one LLC, one LLC MSHR pool, and one DDR4 DRAM.
//!
//! Each core owns a private L1I/L1D pair, an L1D MSHR file, and a stream
//! prefetcher; the LLC, the LLC (DRAM-bound) MSHR pool, and the DRAM
//! channels are shared. The per-core access algorithm is a line-for-line
//! mirror of [`MemoryHierarchy::access`](crate::MemoryHierarchy::access) —
//! same admission-before-mutation contract, same counting contract, same
//! fill/eviction/writeback/prefetch ordering — which is what makes the
//! N=1 instantiation bit-identical to a private hierarchy (pinned by the
//! `single_core_matches_private_hierarchy` test below and, end to end, by
//! the `cdf-sim equiv --boundary` axis).
//!
//! On top of the mirrored algorithm the shared system adds the contention
//! accounting a multi-core mix needs:
//!
//! * **per-core [`MemStats`]** that fold exactly to an independently
//!   maintained shared total (the conservation invariant the proptest
//!   battery checks);
//! * **MSHR fairness**: every LLC-pool rejection is attributed — a core
//!   bounced while holding less than its fair share (`capacity / cores`)
//!   suffered a *steal*, charged to the core holding the most entries;
//! * **LLC occupancy share** via a line→owner map maintained at fill and
//!   eviction;
//! * **DDR4 channel utilization** from the per-channel busy counters;
//! * **(core, chain) namespaced** criticality-chain read attribution, so
//!   chain ids from different cores never collide in shared diagnostics.
//!
//! Inclusion is enforced across *all* cores: an LLC eviction invalidates
//! every core's L1 copies and folds their dirty bits into the writeback.
//!
//! ## Per-core physical namespaces
//!
//! Co-scheduled mix workloads are separate programs with **private
//! architectural memories** (each core gets its own `MemoryImage`), so two
//! cores using the same virtual address do not share data — and must not
//! alias to the same line in the shared LLC or DRAM row space, or one
//! core's streaming would "prefetch" another core's working set out of
//! thin air. Every address entering the shared system is therefore offset
//! into a per-core physical region ([`phys`]): core 0 maps identity (an
//! N=1 system stays bit-identical to the private hierarchy), and higher
//! cores' footprints are disjoint. Contention is exactly the shared
//! *capacity*, *pool*, and *bandwidth* — never phantom data sharing.

use crate::cache::Cache;
use crate::dram::{Dram, DramStats};
use crate::event::{EventMshr, EventOutstanding};
use crate::hierarchy::{
    AccessKind, AccessOutcome, AccessResult, HitLevel, MemConfig, MemStats, MshrFull, MshrLevel,
};
use crate::line_addr;
use crate::mshr::MshrOutcome;
use crate::prefetch::StreamPrefetcher;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// Configuration of the shared system: one [`MemConfig`] stamps out every
/// core's private L1 slice *and* the shared LLC/MSHR/DRAM, so a 1-core
/// shared system is structurally identical to a private hierarchy.
#[derive(Clone, PartialEq, Debug)]
pub struct SharedMemConfig {
    /// Number of cores sharing the LLC, MSHR pool, and DRAM channels.
    pub cores: usize,
    /// Geometry and timing (per-core L1 fields + shared LLC/DRAM fields).
    pub mem: MemConfig,
}

impl SharedMemConfig {
    /// A shared system for `cores` cores with the default Table-1 geometry.
    pub fn new(cores: usize) -> SharedMemConfig {
        SharedMemConfig {
            cores,
            mem: MemConfig::default(),
        }
    }
}

/// Per-core shared-resource accounting beyond [`MemStats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CoreShareStats {
    /// DRAM reads issued on behalf of this core (demand + prefetch +
    /// runahead). Folds to the shared [`DramStats::reads`].
    pub dram_reads: u64,
    /// DRAM writebacks issued on behalf of this core. Folds to the shared
    /// [`DramStats::writes`].
    pub dram_writes: u64,
    /// Rejections this core took at the *shared* LLC MSHR pool
    /// specifically (a subset of its `MemStats::rejections`).
    pub llc_rejections: u64,
    /// LLC-pool rejections this core suffered while holding less than its
    /// fair share of the pool — the pool was eaten by co-runners.
    pub mshr_steals_suffered: u64,
    /// Steals charged to this core for holding the most pool entries when
    /// an under-share co-runner bounced.
    pub mshr_steals_caused: u64,
}

/// One core's private L1 slice.
#[derive(Clone, Debug)]
struct CoreL1 {
    l1i: Cache,
    l1d: Cache,
    l1d_mshr: EventMshr,
    prefetcher: StreamPrefetcher,
    /// Completion cycles of this core's outstanding demand LLC misses
    /// (its MLP signal, mirroring the private hierarchy's tracker).
    demand_outstanding: EventOutstanding,
    stats: MemStats,
    share: CoreShareStats,
}

/// N cores' worth of memory system behind one LLC. See the
/// [module docs](self) for the model.
#[derive(Clone, Debug)]
pub struct MultiCoreMemory {
    cfg: SharedMemConfig,
    cores: Vec<CoreL1>,
    llc: Cache,
    llc_mshr: EventMshr,
    dram: Dram,
    /// Shared totals, maintained *independently* of the per-core stats so
    /// the fold invariant is a real check, not a tautology.
    stats: MemStats,
    /// LLC-pool entries currently held per core.
    inflight: Vec<usize>,
    /// Expiry heap mirroring `inflight`: `(completion cycle, core)`.
    inflight_expiry: BinaryHeap<Reverse<(u64, u32)>>,
    /// Resident LLC lines → the core whose request filled them.
    owner: HashMap<u64, u32>,
    /// DRAM reads per `(core, chain)` — chain ids are namespaced by core so
    /// two cores' criticality chains never collide in shared diagnostics.
    chain_reads: BTreeMap<(u32, u64), u64>,
    /// Total fairness steals across all cores.
    total_steals: u64,
    /// Optional host timer over shared-LLC accesses (see [`crate::prof`]);
    /// `None` — the default — costs one null check per access.
    prof: Option<Box<crate::prof::HeapProf>>,
}

impl MultiCoreMemory {
    /// Creates a shared memory system.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores` is zero.
    pub fn new(cfg: SharedMemConfig) -> MultiCoreMemory {
        assert!(cfg.cores > 0, "a shared memory system needs cores");
        let m = &cfg.mem;
        let cores = (0..cfg.cores)
            .map(|_| CoreL1 {
                l1i: Cache::new(m.l1i),
                l1d: Cache::new(m.l1d),
                l1d_mshr: EventMshr::new(m.l1d_mshrs),
                prefetcher: StreamPrefetcher::new(m.prefetcher),
                demand_outstanding: EventOutstanding::default(),
                stats: MemStats::default(),
                share: CoreShareStats::default(),
            })
            .collect();
        MultiCoreMemory {
            cores,
            llc: Cache::new(m.llc),
            llc_mshr: EventMshr::new(m.llc_mshrs),
            dram: Dram::new(m.dram),
            stats: MemStats::default(),
            inflight: vec![0; cfg.cores],
            inflight_expiry: BinaryHeap::new(),
            owner: HashMap::new(),
            chain_reads: BTreeMap::new(),
            total_steals: 0,
            prof: None,
            cfg,
        }
    }

    /// Enables host-side timing of shared-LLC accesses (the `shared_llc`
    /// subsystem row of a host profile). Idempotent; the timer only reads
    /// the clock, so simulated state and statistics are unchanged.
    pub fn enable_prof(&mut self) {
        if self.prof.is_none() {
            self.prof = Some(Box::default());
        }
    }

    /// Detaches and returns the host timer as a [`crate::prof::MemProfReport`]
    /// (`None` when profiling was never enabled).
    pub fn take_prof(&mut self) -> Option<crate::prof::MemProfReport> {
        self.prof.take().map(|p| crate::prof::MemProfReport {
            shared_llc_ns: p.ns,
            shared_llc_ops: p.ops,
            ..Default::default()
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SharedMemConfig {
        &self.cfg
    }

    /// Retires in-flight-per-core entries whose completion cycle has
    /// passed, matching [`EventMshr::advance`]'s `done <= now` rule so
    /// `sum(inflight)` always equals `llc_mshr.len(now)`.
    fn advance_inflight(&mut self, now: u64) {
        while let Some(&Reverse((done, core))) = self.inflight_expiry.peek() {
            if done > now {
                break;
            }
            self.inflight_expiry.pop();
            self.inflight[core as usize] -= 1;
        }
    }

    fn note_inflight(&mut self, core: usize, done: u64) {
        self.inflight[core] += 1;
        self.inflight_expiry.push(Reverse((done, core as u32)));
    }

    /// Fairness attribution for one LLC-pool rejection taken by `core`:
    /// bounced under fair share → a steal, charged to the heaviest holder.
    fn note_llc_rejection(&mut self, core: usize) {
        self.cores[core].share.llc_rejections += 1;
        let fair = self.llc_mshr.capacity() / self.cfg.cores;
        if self.inflight[core] < fair {
            self.total_steals += 1;
            self.cores[core].share.mshr_steals_suffered += 1;
            let culprit = (0..self.cfg.cores)
                .max_by_key(|&c| (self.inflight[c], Reverse(c)))
                .expect("at least one core");
            self.cores[culprit].share.mshr_steals_caused += 1;
        }
    }

    /// Translates a core-local address into the shared physical space (see
    /// the module docs). Workload addresses sit far below bit 44, so the
    /// tag is a plain disjoint offset; core 0's namespace is the identity
    /// mapping, which is what keeps N=1 bit-identical to the private
    /// hierarchy.
    fn phys(core: usize, addr: u64) -> u64 {
        addr | ((core as u64) << 44)
    }

    /// Performs one access on behalf of `core` at cycle `now`. The
    /// algorithm mirrors [`MemoryHierarchy::access`](crate::MemoryHierarchy::access)
    /// exactly (see the module docs); `chain` attributes any DRAM read to
    /// the `(core, chain)` criticality chain when nonzero.
    ///
    /// Times must be globally non-decreasing across *all* cores — the
    /// round-robin lockstep stepping discipline guarantees this and the
    /// event-driven MSHRs assert it in debug builds.
    pub fn access(
        &mut self,
        core: usize,
        addr: u64,
        kind: AccessKind,
        now: u64,
        wrong_path: bool,
        chain: u64,
    ) -> AccessResult {
        let t0 = crate::prof::HeapProf::start(self.prof.is_some());
        let r = self.access_inner(core, addr, kind, now, wrong_path, chain);
        if let Some(p) = self.prof.as_mut() {
            p.finish(t0);
        }
        r
    }

    fn access_inner(
        &mut self,
        core: usize,
        addr: u64,
        kind: AccessKind,
        now: u64,
        wrong_path: bool,
        chain: u64,
    ) -> AccessResult {
        let is_write = kind == AccessKind::Store;
        let is_inst = kind == AccessKind::InstFetch;
        let addr = Self::phys(core, addr);
        let line = line_addr(addr);
        self.advance_inflight(now);

        // --- Admission (no mutation of architectural state) ---
        let l1_hit = if is_inst {
            self.cores[core].l1i.probe(addr)
        } else {
            self.cores[core].l1d.probe(addr)
        };
        let l1d_merge = if !l1_hit && !is_inst {
            let c = &mut self.cores[core];
            let merge = c.l1d_mshr.outstanding(line, now);
            if merge.is_none() && c.l1d_mshr.len(now) >= c.l1d_mshr.capacity() {
                c.stats.rejections += 1;
                self.stats.rejections += 1;
                let retry_at = self.cores[core]
                    .l1d_mshr
                    .earliest_release(now)
                    .unwrap_or(now + 1);
                return AccessResult::Rejected(MshrFull {
                    level: MshrLevel::L1d,
                    retry_at,
                });
            }
            merge
        } else {
            None
        };
        if !l1_hit
            && l1d_merge.is_none()
            && !self.llc.probe(addr)
            && self.llc_mshr.outstanding(line, now).is_none()
            && self.llc_mshr.len(now) >= self.llc_mshr.capacity()
        {
            self.cores[core].stats.rejections += 1;
            self.stats.rejections += 1;
            self.note_llc_rejection(core);
            return AccessResult::Rejected(MshrFull {
                level: MshrLevel::Llc,
                retry_at: self.llc_mshr.earliest_release(now).unwrap_or(now + 1),
            });
        }

        // --- Accepted: count the access exactly once, on both ledgers ---
        {
            let c = &mut self.cores[core];
            match kind {
                AccessKind::Load => {
                    c.stats.demand_loads += 1;
                    self.stats.demand_loads += 1;
                }
                AccessKind::Store => {
                    c.stats.demand_stores += 1;
                    self.stats.demand_stores += 1;
                }
                AccessKind::InstFetch => {
                    c.stats.inst_fetches += 1;
                    self.stats.inst_fetches += 1;
                }
            }
        }

        // --- L1 ---
        let l1 = if is_inst {
            &mut self.cores[core].l1i
        } else {
            &mut self.cores[core].l1d
        };
        let l1_info = l1.access(addr, is_write);
        debug_assert_eq!(l1_info.hit, l1_hit, "probe agrees with access");
        if l1_info.hit {
            return AccessResult::Done(AccessOutcome {
                ready_at: now + self.cfg.mem.l1_latency,
                level: HitLevel::L1,
            });
        }
        if let Some(done) = l1d_merge {
            return AccessResult::Done(AccessOutcome {
                ready_at: done,
                level: HitLevel::Llc,
            });
        }

        // --- LLC (shared) ---
        let llc_info = self.llc.access(addr, false);
        let ready_at;
        let level;
        if llc_info.hit {
            if llc_info.first_use_of_prefetch {
                // FDP feedback is credited to the consuming core's
                // prefetcher (in a 1-core system: the issuing core's,
                // exactly as in the private hierarchy).
                self.cores[core].prefetcher.on_prefetch_hit();
            }
            ready_at = now + self.cfg.mem.l1_latency + self.cfg.mem.llc_latency;
            level = HitLevel::Llc;
        } else {
            self.cores[core].stats.llc_demand_misses += 1;
            self.stats.llc_demand_misses += 1;
            let issue_at = now + self.cfg.mem.l1_latency + self.cfg.mem.llc_latency;
            if let Some(done) = self.llc_mshr.outstanding(line, now) {
                ready_at = done.max(issue_at);
                level = HitLevel::Dram;
            } else {
                let done = self.dram.read(line, issue_at);
                self.cores[core].share.dram_reads += 1;
                if chain != 0 {
                    *self.chain_reads.entry((core as u32, chain)).or_insert(0) += 1;
                }
                let outcome = self.llc_mshr.try_alloc(line, now, done);
                debug_assert_eq!(outcome, MshrOutcome::Allocated);
                self.note_inflight(core, done);
                if wrong_path {
                    self.cores[core].stats.wrong_path_reads += 1;
                    self.stats.wrong_path_reads += 1;
                }
                self.cores[core].demand_outstanding.note(done);
                self.owner.insert(line, core as u32);
                if let Some(ev) = self.llc.fill(line, false) {
                    self.evict_inclusive(core, ev.line_addr, ev.dirty, done);
                }
                ready_at = done;
                level = HitLevel::Dram;
            }
        }

        // Train the accessing core's prefetcher only on accepted L1D demand
        // misses, after the demand request itself has issued.
        if !is_inst {
            let pf_lines = self.cores[core].prefetcher.on_demand_miss(addr);
            for pf in pf_lines {
                self.issue_prefetch(core, pf, now, false);
            }
        }

        // Fill this core's L1 and track the miss in its L1D MSHRs.
        let l1 = if is_inst {
            &mut self.cores[core].l1i
        } else {
            &mut self.cores[core].l1d
        };
        if let Some(ev) = l1.fill(addr, is_write) {
            if ev.dirty {
                if self.llc.probe(ev.line_addr) {
                    self.llc.fill(ev.line_addr, true);
                } else {
                    self.writeback(core, ev.line_addr, now);
                }
            }
        }
        if !is_inst {
            self.cores[core].l1d_mshr.try_alloc(line, now, ready_at);
        }

        AccessResult::Done(AccessOutcome { ready_at, level })
    }

    /// Issues a runahead prefetch on behalf of `core` (fills the shared LLC
    /// only, bypassing the core's L1D MSHRs). Returns whether a DRAM read
    /// was actually issued.
    pub fn runahead_prefetch(&mut self, core: usize, addr: u64, now: u64) -> bool {
        let t0 = crate::prof::HeapProf::start(self.prof.is_some());
        let r = self.issue_prefetch(core, line_addr(Self::phys(core, addr)), now, true);
        if let Some(p) = self.prof.as_mut() {
            p.finish(t0);
        }
        r
    }

    /// `pf_addr` is already in the shared physical space: prefetcher
    /// training happens on translated addresses, and the runahead entry
    /// point translates before calling here.
    fn issue_prefetch(&mut self, core: usize, pf_addr: u64, now: u64, runahead: bool) -> bool {
        let line = line_addr(pf_addr);
        self.advance_inflight(now);
        if self.llc.probe(line) || self.llc_mshr.outstanding(line, now).is_some() {
            return false;
        }
        if self.llc_mshr.len(now) >= self.llc_mshr.capacity() {
            return false; // prefetches are dropped, never queued
        }
        let done = self.dram.read(
            line,
            now + self.cfg.mem.l1_latency + self.cfg.mem.llc_latency,
        );
        self.cores[core].share.dram_reads += 1;
        self.llc_mshr.try_alloc(line, now, done);
        self.note_inflight(core, done);
        if runahead {
            self.cores[core].stats.runahead_reads += 1;
            self.stats.runahead_reads += 1;
            self.cores[core].demand_outstanding.note(done);
        } else {
            self.cores[core].stats.prefetch_reads += 1;
            self.stats.prefetch_reads += 1;
        }
        self.owner.insert(line, core as u32);
        if let Some(ev) = self.llc.fill_tagged(line, false, true) {
            self.evict_inclusive(core, ev.line_addr, ev.dirty, now);
        }
        true
    }

    /// Evicts a line from the shared LLC under inclusion: every core's L1
    /// copies are invalidated and their dirty bits folded into the
    /// writeback decision (charged to the core that caused the eviction).
    fn evict_inclusive(&mut self, core: usize, victim_line: u64, llc_dirty: bool, now: u64) {
        self.owner.remove(&victim_line);
        let mut dirty = llc_dirty;
        for c in &mut self.cores {
            dirty |= c.l1d.invalidate(victim_line) == Some(true);
            c.l1i.invalidate(victim_line);
        }
        if dirty {
            self.writeback(core, victim_line, now);
        }
    }

    fn writeback(&mut self, core: usize, victim_line: u64, now: u64) {
        self.dram.write(victim_line, now);
        self.cores[core].share.dram_writes += 1;
        self.cores[core].stats.writebacks += 1;
        self.stats.writebacks += 1;
    }

    /// Whether the line containing `addr` is resident in `core`'s L1D or
    /// the shared LLC (state-preserving, like
    /// [`MemoryHierarchy::probe_cached`](crate::MemoryHierarchy::probe_cached)).
    pub fn probe_cached(&self, core: usize, addr: u64) -> bool {
        let addr = Self::phys(core, addr);
        self.cores[core].l1d.probe(addr) || self.llc.probe(addr)
    }

    /// `core`'s demand LLC misses still outstanding at `now` (its MLP
    /// sample).
    pub fn outstanding_demand_misses(&mut self, core: usize, now: u64) -> usize {
        self.cores[core].demand_outstanding.outstanding(now)
    }

    /// `core`'s own memory statistics.
    pub fn core_stats(&self, core: usize) -> &MemStats {
        &self.cores[core].stats
    }

    /// `core`'s shared-resource accounting.
    pub fn core_share(&self, core: usize) -> &CoreShareStats {
        &self.cores[core].share
    }

    /// `(hits, misses)` of `core`'s L1D.
    pub fn l1d_stats(&self, core: usize) -> (u64, u64) {
        self.cores[core].l1d.stats()
    }

    /// Shared totals, maintained independently of the per-core ledgers.
    pub fn shared_stats(&self) -> &MemStats {
        &self.stats
    }

    /// `(hits, misses)` of the shared LLC.
    pub fn llc_stats(&self) -> (u64, u64) {
        self.llc.stats()
    }

    /// Shared DRAM statistics.
    pub fn dram_stats(&self) -> &DramStats {
        self.dram.stats()
    }

    /// Accumulated per-channel DRAM data-bus busy cycles.
    pub fn channel_busy(&self) -> &[u64] {
        self.dram.channel_busy()
    }

    /// Number of resident LLC lines whose fill was caused by `core` — the
    /// occupancy-share signal.
    pub fn llc_occupancy(&self, core: usize) -> usize {
        self.owner.values().filter(|&&c| c as usize == core).count()
    }

    /// Total LLC-MSHR fairness steals (equals the fold of per-core
    /// `mshr_steals_caused`).
    pub fn total_steals(&self) -> u64 {
        self.total_steals
    }

    /// LLC-pool entries currently held by `core` (as of the last access).
    pub fn inflight(&self, core: usize) -> usize {
        self.inflight[core]
    }

    /// DRAM reads attributed to `(core, chain)` criticality chains, in
    /// deterministic key order.
    pub fn chain_reads(&self) -> &BTreeMap<(u32, u64), u64> {
        &self.chain_reads
    }

    /// Asserts the shared-pool conservation invariants at `now`:
    ///
    /// * per-core in-flight counts sum to the LLC MSHR pool occupancy,
    ///   which never exceeds capacity;
    /// * fairness steal attributions sum to the steal total;
    /// * per-core [`MemStats`] fold to the independently maintained shared
    ///   totals, and per-core DRAM read/write attribution folds to the
    ///   shared [`DramStats`];
    /// * the LLC owner map never exceeds the LLC's line count.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated — a simulator bug, never a
    /// workload property.
    pub fn check_invariants(&mut self, now: u64) {
        self.advance_inflight(now);
        let pool = self.llc_mshr.len(now);
        assert!(
            pool <= self.llc_mshr.capacity(),
            "LLC MSHR pool over capacity: {pool}/{}",
            self.llc_mshr.capacity()
        );
        assert_eq!(
            self.inflight.iter().sum::<usize>(),
            pool,
            "per-core in-flight counts disagree with the shared pool"
        );
        assert_eq!(
            self.cores
                .iter()
                .map(|c| c.share.mshr_steals_caused)
                .sum::<u64>(),
            self.total_steals,
            "steal attributions must sum to the steal total"
        );
        let fold = self
            .cores
            .iter()
            .fold(MemStats::default(), |a, c| MemStats {
                demand_loads: a.demand_loads + c.stats.demand_loads,
                demand_stores: a.demand_stores + c.stats.demand_stores,
                inst_fetches: a.inst_fetches + c.stats.inst_fetches,
                llc_demand_misses: a.llc_demand_misses + c.stats.llc_demand_misses,
                prefetch_reads: a.prefetch_reads + c.stats.prefetch_reads,
                runahead_reads: a.runahead_reads + c.stats.runahead_reads,
                wrong_path_reads: a.wrong_path_reads + c.stats.wrong_path_reads,
                writebacks: a.writebacks + c.stats.writebacks,
                rejections: a.rejections + c.stats.rejections,
            });
        assert_eq!(
            fold, self.stats,
            "per-core MemStats must fold to the shared totals"
        );
        assert_eq!(
            self.cores.iter().map(|c| c.share.dram_reads).sum::<u64>(),
            self.dram.stats().reads,
            "per-core DRAM read attribution must fold to the DRAM total"
        );
        assert_eq!(
            self.cores.iter().map(|c| c.share.dram_writes).sum::<u64>(),
            self.dram.stats().writes,
            "per-core DRAM write attribution must fold to the DRAM total"
        );
        let llc_lines = (self.cfg.mem.llc.capacity_bytes / crate::LINE_BYTES) as usize;
        assert!(
            self.owner.len() <= llc_lines,
            "LLC owner map tracks more lines than the LLC holds: {}/{llc_lines}",
            self.owner.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryHierarchy, LINE_BYTES};

    fn small_cfg() -> MemConfig {
        MemConfig {
            l1d_mshrs: 4,
            llc_mshrs: 6,
            ..MemConfig::default()
        }
    }

    /// Deterministic mixed access pattern, shared by several tests.
    fn drive(f: &mut dyn FnMut(u64, AccessKind, u64, bool, u64)) {
        let mut now = 0u64;
        let mut x = 0x9E37_79B9u64;
        for i in 0..3000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            now += x % 5;
            let addr = match i % 4 {
                0 => 0x10_0000 + (i / 4) * LINE_BYTES,
                1 => (x >> 16) & 0x3F_FFC0,
                2 => 0x40_0000 + (x & 0xFFF8),
                _ => 0x80_0000 + (i % 512) * 8,
            };
            let kind = match i % 4 {
                3 => AccessKind::InstFetch,
                2 => AccessKind::Store,
                _ => AccessKind::Load,
            };
            f(addr, kind, now, i % 64 == 9, 1 + i % 3);
        }
    }

    /// The boundary-equivalence keystone at the component level: a 1-core
    /// shared system and a private hierarchy, driven with the identical
    /// access sequence, agree on every outcome and every statistic.
    #[test]
    fn single_core_matches_private_hierarchy() {
        let mut shared = MultiCoreMemory::new(SharedMemConfig {
            cores: 1,
            mem: small_cfg(),
        });
        let mut private = MemoryHierarchy::new(small_cfg());
        drive(&mut |addr, kind, now, wp, chain| {
            let a = shared.access(0, addr, kind, now, wp, chain);
            let b = private.access(addr, kind, now, wp);
            assert_eq!(a, b, "shared[1] diverged from the private hierarchy");
            assert_eq!(
                shared.outstanding_demand_misses(0, now),
                private.outstanding_demand_misses(now)
            );
            if chain == 1 {
                assert_eq!(
                    shared.runahead_prefetch(0, addr ^ 0x2_0000, now),
                    private.runahead_prefetch(addr ^ 0x2_0000, now)
                );
            }
        });
        assert_eq!(shared.core_stats(0), private.stats());
        assert_eq!(shared.shared_stats(), private.stats());
        assert_eq!(shared.l1d_stats(0), private.l1d_stats());
        assert_eq!(shared.llc_stats(), private.llc_stats());
        assert_eq!(shared.dram_stats(), private.dram_stats());
        shared.check_invariants(u64::MAX / 2);
    }

    #[test]
    fn two_cores_conserve_the_shared_pool() {
        let mut m = MultiCoreMemory::new(SharedMemConfig {
            cores: 2,
            mem: small_cfg(),
        });
        drive(&mut |addr, kind, now, wp, chain| {
            // Core 1 hammers a conflicting region at the same cycles.
            m.access(0, addr, kind, now, wp, chain);
            m.access(1, addr ^ 0x100_0000, kind, now, wp, chain);
            m.check_invariants(now);
        });
        assert!(
            m.shared_stats().rejections > 0,
            "the tiny pool must have backpressured"
        );
        assert!(m.dram_stats().reads > 0);
        assert!(
            m.channel_busy().iter().sum::<u64>() > 0,
            "channel busy counters must accumulate"
        );
    }

    #[test]
    fn fairness_steals_are_attributed() {
        // Core 0 fills the whole pool with far-apart misses; core 1's first
        // miss bounces while holding zero entries — a steal caused by 0.
        let mut m = MultiCoreMemory::new(SharedMemConfig {
            cores: 2,
            mem: MemConfig {
                llc_mshrs: 4,
                prefetcher: crate::PrefetcherConfig {
                    enabled: false,
                    ..crate::PrefetcherConfig::default()
                },
                ..MemConfig::default()
            },
        });
        for i in 0..4u64 {
            let r = m.access(0, 0x100_0000 + i * 0x10_0000, AccessKind::Load, 0, false, 0);
            assert!(!r.is_rejected(), "pool has room for core 0's misses");
        }
        let r = m.access(1, 0x800_0000, AccessKind::Load, 0, false, 0);
        assert!(r.is_rejected(), "pool is pinned by core 0");
        assert_eq!(m.total_steals(), 1);
        assert_eq!(m.core_share(1).mshr_steals_suffered, 1);
        assert_eq!(m.core_share(0).mshr_steals_caused, 1);
        assert_eq!(m.core_share(1).llc_rejections, 1);
        m.check_invariants(0);
    }

    #[test]
    fn chain_reads_are_namespaced_by_core() {
        // Both cores issue a DRAM-bound miss under the *same* chain id 7;
        // the shared diagnostics must keep them apart.
        let mut m = MultiCoreMemory::new(SharedMemConfig {
            cores: 2,
            mem: small_cfg(),
        });
        m.access(0, 0x100_0000, AccessKind::Load, 0, false, 7);
        m.access(1, 0x200_0000, AccessKind::Load, 0, false, 7);
        assert_eq!(m.chain_reads().get(&(0, 7)), Some(&1));
        assert_eq!(m.chain_reads().get(&(1, 7)), Some(&1));
        assert_eq!(m.chain_reads().len(), 2, "no cross-core collision");
    }

    #[test]
    fn inclusion_invalidates_l1_and_namespaces_stay_disjoint() {
        // Tiny LLC so evictions are easy to force. Both cores touch the
        // same *core-local* address — distinct physical lines under the
        // per-core namespaces.
        let mut m = MultiCoreMemory::new(SharedMemConfig {
            cores: 2,
            mem: MemConfig {
                llc: crate::CacheConfig {
                    capacity_bytes: 2048,
                    ways: 2,
                }, // 16 sets
                prefetcher: crate::PrefetcherConfig {
                    enabled: false,
                    ..crate::PrefetcherConfig::default()
                },
                ..MemConfig::default()
            },
        });
        let victim = 0x0u64;
        m.access(0, victim, AccessKind::Load, 0, false, 0);
        m.access(1, victim, AccessKind::Load, 1000, false, 0);
        assert!(m.probe_cached(0, victim) && m.probe_cached(1, victim));
        assert_eq!(
            m.llc_occupancy(0) + m.llc_occupancy(1),
            2,
            "same core-local address must occupy two distinct physical lines"
        );
        // Walk same-set lines on core 0 until its victim leaves the LLC.
        let mut now = 10_000u64;
        for i in 1..8u64 {
            m.access(0, victim + i * 2048 * 64, AccessKind::Load, now, false, 0);
            now += 10_000;
        }
        let phys0 = MultiCoreMemory::phys(0, victim);
        let phys1 = MultiCoreMemory::phys(1, victim);
        assert!(
            !m.llc.probe(phys0),
            "core 0's victim must have been evicted"
        );
        assert!(
            !m.cores[0].l1d.probe(phys0),
            "inclusion must invalidate the owning core's L1 copy"
        );
        // Core 1's physical line shares the set, so core 0's capacity
        // pressure legally evicted it too — and inclusion must have
        // stripped core 1's L1 copy along with it.
        assert!(!m.llc.probe(phys1), "set pressure evicts across namespaces");
        assert!(
            !m.cores[1].l1d.probe(phys1),
            "inclusion must reach the non-evicting core's L1"
        );
        m.check_invariants(now);
    }

    #[test]
    fn occupancy_owner_map_tracks_fills() {
        let mut m = MultiCoreMemory::new(SharedMemConfig {
            cores: 2,
            mem: small_cfg(),
        });
        let mut now = 0;
        for i in 0..16u64 {
            m.access(
                0,
                0x100_0000 + i * LINE_BYTES,
                AccessKind::Load,
                now,
                false,
                0,
            );
            now += 2000;
        }
        for i in 0..4u64 {
            m.access(
                1,
                0x900_0000 + i * LINE_BYTES,
                AccessKind::Load,
                now,
                false,
                0,
            );
            now += 2000;
        }
        assert!(
            m.llc_occupancy(0) >= 16,
            "core 0 filled at least its demands"
        );
        assert!(m.llc_occupancy(1) >= 4);
        m.check_invariants(now);
    }
}
