//! The full memory hierarchy: L1I + L1D + LLC + MSHRs + prefetcher + DRAM.

use crate::cache::{Cache, CacheConfig};
use crate::dram::{Dram, DramConfig, DramStats};
use crate::line_addr;
use crate::mshr::{Mshr, MshrOutcome};
use crate::prefetch::{PrefetcherConfig, StreamPrefetcher};

/// Configuration of the whole hierarchy (defaults mirror Table 1).
#[derive(Clone, PartialEq, Debug)]
pub struct MemConfig {
    /// L1 instruction cache geometry (32KB, 8-way).
    pub l1i: CacheConfig,
    /// L1 data cache geometry (32KB, 8-way).
    pub l1d: CacheConfig,
    /// Last-level cache geometry (1MB, 16-way).
    pub llc: CacheConfig,
    /// L1 access latency in cycles (Table 1: 2).
    pub l1_latency: u64,
    /// Additional LLC access latency in cycles (Table 1: 18).
    pub llc_latency: u64,
    /// L1D miss-status holding registers.
    pub l1d_mshrs: usize,
    /// LLC (DRAM-bound) miss-status holding registers.
    pub llc_mshrs: usize,
    /// Stream prefetcher configuration.
    pub prefetcher: PrefetcherConfig,
    /// DRAM configuration.
    pub dram: DramConfig,
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig {
            l1i: CacheConfig {
                capacity_bytes: 32 * 1024,
                ways: 8,
            },
            l1d: CacheConfig {
                capacity_bytes: 32 * 1024,
                ways: 8,
            },
            llc: CacheConfig {
                capacity_bytes: 1024 * 1024,
                ways: 16,
            },
            l1_latency: 2,
            llc_latency: 18,
            l1d_mshrs: 32,
            llc_mshrs: 40,
            prefetcher: PrefetcherConfig::default(),
            dram: DramConfig::default(),
        }
    }
}

/// What kind of access the core is performing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// Demand data load.
    Load,
    /// Demand data store (write-allocate).
    Store,
    /// Instruction fetch.
    InstFetch,
}

/// Which level serviced an access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HitLevel {
    /// Hit in the L1 (I or D).
    L1,
    /// Missed L1, hit the LLC.
    Llc,
    /// Missed the LLC; serviced by DRAM (or merged into an outstanding
    /// DRAM-bound miss).
    Dram,
}

/// A serviced access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessOutcome {
    /// Cycle at which the data is available to the core.
    pub ready_at: u64,
    /// Level that supplied the data.
    pub level: HitLevel,
}

/// Which MSHR file ran out of capacity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MshrLevel {
    /// The L1D miss-status holding registers.
    L1d,
    /// The LLC (DRAM-bound) miss-status holding registers.
    Llc,
}

/// Typed MSHR-full backpressure: the structural limit on memory-level
/// parallelism, reported as an error instead of an abort so callers can
/// retry, reschedule, or surface it in run records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MshrFull {
    /// The MSHR file that was full.
    pub level: MshrLevel,
    /// Earliest cycle at which an entry frees — callers that track time can
    /// retry then instead of polling every cycle.
    pub retry_at: u64,
}

impl std::fmt::Display for MshrFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let level = match self.level {
            MshrLevel::L1d => "L1D",
            MshrLevel::Llc => "LLC",
        };
        write!(
            f,
            "{level} MSHRs full; earliest entry frees at cycle {}",
            self.retry_at
        )
    }
}

impl std::error::Error for MshrFull {}

/// Result of [`MemoryHierarchy::access`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessResult {
    /// The access was accepted; data ready at `ready_at`.
    Done(AccessOutcome),
    /// MSHRs were full; retry (the payload says which file and when a slot
    /// frees). This is the structural limit on memory-level parallelism.
    Rejected(MshrFull),
}

impl AccessResult {
    /// Converts to a `Result`, surfacing backpressure as the typed
    /// [`MshrFull`] error.
    pub fn outcome(self) -> Result<AccessOutcome, MshrFull> {
        match self {
            AccessResult::Done(out) => Ok(out),
            AccessResult::Rejected(full) => Err(full),
        }
    }

    /// Whether the access was rejected by full MSHRs.
    pub fn is_rejected(&self) -> bool {
        matches!(self, AccessResult::Rejected(_))
    }
}

/// Aggregate hierarchy statistics (beyond per-component counters).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemStats {
    /// Demand loads issued by the core.
    pub demand_loads: u64,
    /// Demand stores issued by the core.
    pub demand_stores: u64,
    /// Instruction fetch line accesses.
    pub inst_fetches: u64,
    /// Demand accesses that missed the LLC (went to DRAM).
    pub llc_demand_misses: u64,
    /// DRAM reads issued on behalf of prefetches.
    pub prefetch_reads: u64,
    /// DRAM reads issued on behalf of runahead execution.
    pub runahead_reads: u64,
    /// DRAM reads issued on behalf of wrong-path demand accesses.
    pub wrong_path_reads: u64,
    /// Writebacks sent to DRAM.
    pub writebacks: u64,
    /// Accesses rejected because MSHRs were full.
    pub rejections: u64,
}

/// The memory hierarchy the core talks to. See the [crate docs](crate) for
/// the model and an example.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    cfg: MemConfig,
    l1i: Cache,
    l1d: Cache,
    llc: Cache,
    l1d_mshr: Mshr,
    llc_mshr: Mshr,
    prefetcher: StreamPrefetcher,
    dram: Dram,
    stats: MemStats,
    /// Completion cycles of outstanding *demand* LLC misses, for MLP
    /// measurement (merged and prefetch requests are not double counted).
    demand_outstanding: Vec<u64>,
}

impl MemoryHierarchy {
    /// Creates a hierarchy from a configuration.
    pub fn new(cfg: MemConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            llc: Cache::new(cfg.llc),
            l1d_mshr: Mshr::new(cfg.l1d_mshrs),
            llc_mshr: Mshr::new(cfg.llc_mshrs),
            prefetcher: StreamPrefetcher::new(cfg.prefetcher),
            dram: Dram::new(cfg.dram),
            stats: MemStats::default(),
            demand_outstanding: Vec::new(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Performs an access at cycle `now`. `wrong_path` attributes any DRAM
    /// read this access causes to wrong-path execution in the statistics
    /// (the paper's runahead-overhead accounting).
    pub fn access(
        &mut self,
        addr: u64,
        kind: AccessKind,
        now: u64,
        wrong_path: bool,
    ) -> AccessResult {
        match kind {
            AccessKind::Load => self.stats.demand_loads += 1,
            AccessKind::Store => self.stats.demand_stores += 1,
            AccessKind::InstFetch => self.stats.inst_fetches += 1,
        }
        let is_write = kind == AccessKind::Store;
        let is_inst = kind == AccessKind::InstFetch;

        // --- L1 ---
        let l1 = if is_inst {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        let l1_info = l1.access(addr, is_write);
        if l1_info.hit {
            return AccessResult::Done(AccessOutcome {
                ready_at: now + self.cfg.l1_latency,
                level: HitLevel::L1,
            });
        }

        // L1 miss: check the L1 MSHRs (data side only; the in-order fetch
        // unit has a single outstanding I-miss by construction).
        if !is_inst {
            let line = line_addr(addr);
            match self.l1d_mshr.outstanding(line, now) {
                Some(done) => {
                    // Merge with an in-flight L1 miss.
                    return AccessResult::Done(AccessOutcome {
                        ready_at: done,
                        level: HitLevel::Llc,
                    });
                }
                None => {
                    if self.l1d_mshr.len(now) >= self.l1d_mshr.capacity() {
                        self.stats.rejections += 1;
                        return AccessResult::Rejected(MshrFull {
                            level: MshrLevel::L1d,
                            retry_at: self.l1d_mshr.earliest_release(now).unwrap_or(now + 1),
                        });
                    }
                }
            }
        }

        // Train the prefetcher on demand L1D misses.
        if !is_inst {
            let pf_lines = self.prefetcher.on_demand_miss(addr);
            for pf in pf_lines {
                self.issue_prefetch(pf, now, false);
            }
        }

        // --- LLC ---
        let llc_info = self.llc.access(addr, false);
        let ready_at;
        let level;
        if llc_info.hit {
            if llc_info.first_use_of_prefetch {
                self.prefetcher.on_prefetch_hit();
            }
            ready_at = now + self.cfg.l1_latency + self.cfg.llc_latency;
            level = HitLevel::Llc;
        } else {
            // LLC miss → DRAM, moderated by the LLC MSHRs.
            self.stats.llc_demand_misses += 1;
            let line = line_addr(addr);
            let issue_at = now + self.cfg.l1_latency + self.cfg.llc_latency;
            if let Some(done) = self.llc_mshr.outstanding(line, now) {
                ready_at = done.max(issue_at);
                level = HitLevel::Dram;
            } else if self.llc_mshr.len(now) >= self.llc_mshr.capacity() {
                self.stats.rejections += 1;
                return AccessResult::Rejected(MshrFull {
                    level: MshrLevel::Llc,
                    retry_at: self.llc_mshr.earliest_release(now).unwrap_or(now + 1),
                });
            } else {
                {
                    let done = self.dram.read(line, issue_at);
                    let outcome = self.llc_mshr.try_alloc(line, now, done);
                    debug_assert_eq!(outcome, MshrOutcome::Allocated);
                    if wrong_path {
                        self.stats.wrong_path_reads += 1;
                    }
                    self.demand_outstanding.retain(|&d| d > now);
                    self.demand_outstanding.push(done);
                    // Fill the LLC now (tag-available model).
                    if let Some(ev) = self.llc.fill(line, false) {
                        self.evict_inclusive(ev.line_addr, ev.dirty, done);
                    }
                    ready_at = done;
                    level = HitLevel::Dram;
                }
            }
        }

        // Fill L1 and track the outstanding miss in the L1D MSHRs.
        let l1 = if is_inst {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        if let Some(ev) = l1.fill(addr, is_write) {
            if ev.dirty {
                // Inclusive-ish: push dirty L1 victims down into the LLC.
                if self.llc.probe(ev.line_addr) {
                    self.llc.fill(ev.line_addr, true);
                } else {
                    self.writeback(ev.line_addr, now);
                }
            }
        }
        if !is_inst {
            self.l1d_mshr.try_alloc(line_addr(addr), now, ready_at);
        }

        AccessResult::Done(AccessOutcome { ready_at, level })
    }

    /// Issues a runahead prefetch of the line containing `addr` into the
    /// LLC. Runahead loads bypass the L1D MSHRs (they fill the LLC only, as
    /// PRE's prefetches do) but still consume LLC MSHRs and DRAM bandwidth.
    /// Returns whether a DRAM read was actually issued.
    pub fn runahead_prefetch(&mut self, addr: u64, now: u64) -> bool {
        self.issue_prefetch(line_addr(addr), now, true)
    }

    fn issue_prefetch(&mut self, pf_addr: u64, now: u64, runahead: bool) -> bool {
        let line = line_addr(pf_addr);
        if self.llc.probe(line) || self.llc_mshr.outstanding(line, now).is_some() {
            return false;
        }
        if self.llc_mshr.len(now) >= self.llc_mshr.capacity() {
            return false; // prefetches are dropped, never queued
        }
        let done = self.dram.read(line, now + self.cfg.llc_latency);
        self.llc_mshr.try_alloc(line, now, done);
        if runahead {
            self.stats.runahead_reads += 1;
            // Runahead loads count toward measured MLP (the paper's Fig. 14
            // explicitly includes PRE's wrong-path/runahead loads in MLP).
            self.demand_outstanding.retain(|&d| d > now);
            self.demand_outstanding.push(done);
        } else {
            self.stats.prefetch_reads += 1;
        }
        // Runahead fills are tagged `prefetched` too: both speculative fill
        // kinds count as a prefetch hit on first demand use (FDP feedback).
        if let Some(ev) = self.llc.fill_tagged(line, false, true) {
            self.evict_inclusive(ev.line_addr, ev.dirty, now);
        }
        true
    }

    /// Evicts a line from the LLC under inclusion: dirty inner (L1) copies
    /// are folded into the writeback decision before being invalidated.
    fn evict_inclusive(&mut self, victim_line: u64, llc_dirty: bool, now: u64) {
        let l1_dirty = self.l1d.invalidate(victim_line) == Some(true);
        self.l1i.invalidate(victim_line);
        if llc_dirty || l1_dirty {
            self.writeback(victim_line, now);
        }
    }

    fn writeback(&mut self, victim_line: u64, now: u64) {
        self.dram.write(victim_line, now);
        self.stats.writebacks += 1;
    }

    /// Whether the line containing `addr` is resident in the LLC or closer
    /// (used by the retire stage to classify a load as an "LLC miss" for the
    /// Critical Count Tables without disturbing cache state).
    pub fn probe_cached(&self, addr: u64) -> bool {
        self.l1d.probe(addr) || self.llc.probe(addr)
    }

    /// Number of demand LLC misses still outstanding at `now` — the quantity
    /// averaged for the paper's MLP figure (Fig. 14).
    pub fn outstanding_demand_misses(&self, now: u64) -> usize {
        self.demand_outstanding.iter().filter(|&&d| d > now).count()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// DRAM statistics (the memory-traffic figure reads `total()`).
    pub fn dram_stats(&self) -> &DramStats {
        self.dram.stats()
    }

    /// `(hits, misses)` of the L1D.
    pub fn l1d_stats(&self) -> (u64, u64) {
        self.l1d.stats()
    }

    /// `(hits, misses)` of the LLC.
    pub fn llc_stats(&self) -> (u64, u64) {
        self.llc.stats()
    }

    /// The prefetcher (read-only view for reports).
    pub fn prefetcher(&self) -> &StreamPrefetcher {
        &self.prefetcher
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LINE_BYTES;

    fn no_pf() -> MemConfig {
        MemConfig {
            prefetcher: PrefetcherConfig {
                enabled: false,
                ..PrefetcherConfig::default()
            },
            ..MemConfig::default()
        }
    }

    fn done(r: AccessResult) -> AccessOutcome {
        r.outcome()
            .unwrap_or_else(|full| panic!("access unexpectedly backpressured: {full}"))
    }

    #[test]
    fn l1_llc_dram_levels() {
        let mut m = MemoryHierarchy::new(no_pf());
        let first = done(m.access(0x10000, AccessKind::Load, 0, false));
        assert_eq!(first.level, HitLevel::Dram);
        assert!(first.ready_at >= 20 + 86, "l1+llc+dram latency");

        let hit = done(m.access(0x10000, AccessKind::Load, first.ready_at, false));
        assert_eq!(hit.level, HitLevel::L1);
        assert_eq!(hit.ready_at, first.ready_at + 2);

        // Evict from L1 by filling 9 lines in the same L1 set (64 sets, 8 ways)
        // but not from the 16-way LLC: next access is an LLC hit.
        for i in 1..=8u64 {
            m.access(0x10000 + i * 64 * 64, AccessKind::Load, 10_000 * i, false);
        }
        let llc_hit = done(m.access(0x10000, AccessKind::Load, 1_000_000, false));
        assert_eq!(llc_hit.level, HitLevel::Llc);
        assert_eq!(llc_hit.ready_at, 1_000_000 + 2 + 18);
    }

    #[test]
    fn mshr_merge_same_line() {
        let mut m = MemoryHierarchy::new(no_pf());
        let a = done(m.access(0x20000, AccessKind::Load, 0, false));
        // Second miss to the same line while outstanding: merged, same-ish time.
        let b = done(m.access(0x20008, AccessKind::Load, 1, false));
        assert_eq!(b.level, HitLevel::L1, "line already filled tag-wise");
        let _ = a;
    }

    #[test]
    fn rejection_when_mshrs_full() {
        let mut cfg = no_pf();
        cfg.llc_mshrs = 2;
        cfg.l1d_mshrs = 2;
        let mut m = MemoryHierarchy::new(cfg);
        assert!(matches!(
            m.access(0x0, AccessKind::Load, 0, false),
            AccessResult::Done(_)
        ));
        assert!(matches!(
            m.access(0x10000, AccessKind::Load, 0, false),
            AccessResult::Done(_)
        ));
        let r = m.access(0x20000, AccessKind::Load, 0, false);
        let full = r.outcome().expect_err("third distinct line must reject");
        // The L1D MSHR file sits in front of the LLC's, so it is the one
        // that reports full here.
        assert_eq!(full.level, MshrLevel::L1d);
        assert!(full.retry_at > 0, "retry hint must point forward in time");
        assert_eq!(m.stats().rejections, 1);
        // The hint is honest: retrying at `retry_at` succeeds.
        assert!(matches!(
            m.access(0x20000, AccessKind::Load, full.retry_at, false),
            AccessResult::Done(_)
        ));
        // After the misses complete, capacity frees up.
        assert!(matches!(
            m.access(0x20000, AccessKind::Load, 100_000, false),
            AccessResult::Done(_)
        ));
    }

    #[test]
    fn outstanding_demand_misses_counts_parallel_misses() {
        let mut m = MemoryHierarchy::new(no_pf());
        m.access(0x0, AccessKind::Load, 0, false);
        m.access(0x10000, AccessKind::Load, 0, false);
        m.access(0x20000, AccessKind::Load, 0, false);
        assert_eq!(m.outstanding_demand_misses(5), 3);
        assert_eq!(m.outstanding_demand_misses(1_000_000), 0);
    }

    #[test]
    fn wrong_path_attribution() {
        let mut m = MemoryHierarchy::new(no_pf());
        m.access(0x0, AccessKind::Load, 0, true);
        m.access(0x10000, AccessKind::Load, 0, false);
        assert_eq!(m.stats().wrong_path_reads, 1);
    }

    #[test]
    fn prefetcher_reduces_demand_miss_latency() {
        // Stream through memory with the prefetcher on and off; the prefetched
        // run must see more LLC hits.
        let mut on = MemoryHierarchy::new(MemConfig::default());
        let mut off = MemoryHierarchy::new(no_pf());
        let mut now = 0u64;
        let (mut llc_hits_on, mut llc_hits_off) = (0, 0);
        for i in 0..256u64 {
            let addr = 0x100000 + i * LINE_BYTES;
            if done(on.access(addr, AccessKind::Load, now, false)).level == HitLevel::Llc {
                llc_hits_on += 1;
            }
            if done(off.access(addr, AccessKind::Load, now, false)).level == HitLevel::Llc {
                llc_hits_off += 1;
            }
            now += 300;
        }
        assert!(
            llc_hits_on > llc_hits_off + 100,
            "prefetcher must convert DRAM misses into LLC hits: {llc_hits_on} vs {llc_hits_off}"
        );
        assert!(on.stats().prefetch_reads > 0);
    }

    #[test]
    fn stores_write_allocate_and_writeback() {
        let mut cfg = no_pf();
        cfg.l1d = CacheConfig {
            capacity_bytes: 1024,
            ways: 2,
        }; // 8 sets
        cfg.llc = CacheConfig {
            capacity_bytes: 2048,
            ways: 2,
        }; // 16 sets
        let mut m = MemoryHierarchy::new(cfg);
        // Write then force eviction through both levels.
        m.access(0x0, AccessKind::Store, 0, false);
        let mut now = 100_000u64;
        for i in 1..64u64 {
            m.access(i * 2048, AccessKind::Store, now, false);
            now += 100_000;
        }
        assert!(m.stats().writebacks > 0, "dirty lines must reach DRAM");
        assert!(m.dram_stats().writes > 0);
    }

    #[test]
    fn inst_fetches_use_l1i() {
        let mut m = MemoryHierarchy::new(no_pf());
        let a = done(m.access(0x40, AccessKind::InstFetch, 0, false));
        assert_eq!(a.level, HitLevel::Dram);
        let b = done(m.access(0x40, AccessKind::InstFetch, a.ready_at, false));
        assert_eq!(b.level, HitLevel::L1);
        // Data access to the same line does not hit (separate L1s) but hits LLC.
        let c = done(m.access(0x40, AccessKind::Load, a.ready_at, false));
        assert_eq!(c.level, HitLevel::Llc);
        assert_eq!(m.stats().inst_fetches, 2);
    }

    #[test]
    fn probe_cached_reflects_residency() {
        let mut m = MemoryHierarchy::new(no_pf());
        assert!(!m.probe_cached(0x5000));
        m.access(0x5000, AccessKind::Load, 0, false);
        assert!(m.probe_cached(0x5000));
    }
}
