//! The full memory hierarchy: L1I + L1D + LLC + MSHRs + prefetcher + DRAM.

use crate::cache::{Cache, CacheConfig};
use crate::dram::{Dram, DramConfig, DramStats};
use crate::event::{EventMshr, EventOutstanding};
use crate::line_addr;
use crate::mshr::{Mshr, MshrOutcome};
use crate::prefetch::{PrefetcherConfig, StreamPrefetcher};
use crate::prof::{HeapProf, MemProfReport};

/// Configuration of the whole hierarchy (defaults mirror Table 1).
#[derive(Clone, PartialEq, Debug)]
pub struct MemConfig {
    /// L1 instruction cache geometry (32KB, 8-way).
    pub l1i: CacheConfig,
    /// L1 data cache geometry (32KB, 8-way).
    pub l1d: CacheConfig,
    /// Last-level cache geometry (1MB, 16-way).
    pub llc: CacheConfig,
    /// L1 access latency in cycles (Table 1: 2).
    pub l1_latency: u64,
    /// Additional LLC access latency in cycles (Table 1: 18).
    pub llc_latency: u64,
    /// L1D miss-status holding registers.
    pub l1d_mshrs: usize,
    /// LLC (DRAM-bound) miss-status holding registers.
    pub llc_mshrs: usize,
    /// Stream prefetcher configuration.
    pub prefetcher: PrefetcherConfig,
    /// DRAM configuration.
    pub dram: DramConfig,
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig {
            l1i: CacheConfig {
                capacity_bytes: 32 * 1024,
                ways: 8,
            },
            l1d: CacheConfig {
                capacity_bytes: 32 * 1024,
                ways: 8,
            },
            llc: CacheConfig {
                capacity_bytes: 1024 * 1024,
                ways: 16,
            },
            l1_latency: 2,
            llc_latency: 18,
            l1d_mshrs: 32,
            llc_mshrs: 40,
            prefetcher: PrefetcherConfig::default(),
            dram: DramConfig::default(),
        }
    }
}

/// Which bookkeeping implementation the hierarchy runs on. Both produce
/// bit-identical timing and statistics (proven by `cdf-sim equiv --mem`);
/// only the cost of tracking outstanding misses differs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MemModelKind {
    /// Outstanding misses retire on completion-cycle min-heaps
    /// ([`EventMshr`]): O(1) occupancy queries and per-cycle MLP samples.
    /// Requires monotonically non-decreasing access times, which the core
    /// guarantees. The default.
    #[default]
    EventDriven,
    /// The original lazy implementation ([`Mshr`] + `Vec` retain/filter):
    /// every query rescans entries against `now`. Kept compiled as the
    /// equivalence oracle.
    ReferenceLazy,
}

impl MemModelKind {
    /// Stable label used in serialized reports and result-store keys.
    pub fn as_str(self) -> &'static str {
        match self {
            MemModelKind::EventDriven => "mem-event",
            MemModelKind::ReferenceLazy => "mem-lazy",
        }
    }
}

/// An MSHR file, dispatching to the lazy or event-driven implementation.
/// All methods take `&mut self` because the event model advances its
/// expiry heap on every query. Every operation is bracketed by an optional
/// host timer ([`HeapProf`]) so profiled runs can attribute wall time to
/// MSHR bookkeeping; an unprofiled file pays one null check per call.
#[derive(Clone, Debug)]
struct MshrFile {
    imp: MshrImpl,
    prof: Option<Box<HeapProf>>,
}

#[derive(Clone, Debug)]
enum MshrImpl {
    Lazy(Mshr),
    Event(EventMshr),
}

impl MshrFile {
    fn new(capacity: usize, model: MemModelKind) -> MshrFile {
        MshrFile {
            imp: match model {
                MemModelKind::EventDriven => MshrImpl::Event(EventMshr::new(capacity)),
                MemModelKind::ReferenceLazy => MshrImpl::Lazy(Mshr::new(capacity)),
            },
            prof: None,
        }
    }

    #[inline]
    fn finish(&mut self, t0: Option<std::time::Instant>) {
        if let Some(p) = self.prof.as_mut() {
            p.finish(t0);
        }
    }

    fn try_alloc(&mut self, line: u64, now: u64, completes_at: u64) -> MshrOutcome {
        let t0 = HeapProf::start(self.prof.is_some());
        let r = match &mut self.imp {
            MshrImpl::Lazy(m) => m.try_alloc(line, now, completes_at),
            MshrImpl::Event(m) => m.try_alloc(line, now, completes_at),
        };
        self.finish(t0);
        r
    }

    fn outstanding(&mut self, line: u64, now: u64) -> Option<u64> {
        let t0 = HeapProf::start(self.prof.is_some());
        let r = match &mut self.imp {
            MshrImpl::Lazy(m) => m.outstanding(line, now),
            MshrImpl::Event(m) => m.outstanding(line, now),
        };
        self.finish(t0);
        r
    }

    fn len(&mut self, now: u64) -> usize {
        let t0 = HeapProf::start(self.prof.is_some());
        let r = match &mut self.imp {
            MshrImpl::Lazy(m) => m.len(now),
            MshrImpl::Event(m) => m.len(now),
        };
        self.finish(t0);
        r
    }

    fn capacity(&self) -> usize {
        match &self.imp {
            MshrImpl::Lazy(m) => m.capacity(),
            MshrImpl::Event(m) => m.capacity(),
        }
    }

    fn earliest_release(&mut self, now: u64) -> Option<u64> {
        let t0 = HeapProf::start(self.prof.is_some());
        let r = match &mut self.imp {
            MshrImpl::Lazy(m) => m.earliest_release(now),
            MshrImpl::Event(m) => m.earliest_release(now),
        };
        self.finish(t0);
        r
    }
}

/// Completion cycles of outstanding *demand* LLC misses, for MLP
/// measurement (merged and prefetch requests are not double counted).
/// Operations carry the same optional host timer as [`MshrFile`].
#[derive(Clone, Debug)]
struct MlpTracker {
    imp: MlpImpl,
    prof: Option<Box<HeapProf>>,
}

#[derive(Clone, Debug)]
enum MlpImpl {
    /// Reference: `retain` on insert, filter-count on sample.
    Lazy(Vec<u64>),
    /// Event-driven: min-heap popped as completions pass.
    Event(EventOutstanding),
}

impl MlpTracker {
    fn new(model: MemModelKind) -> MlpTracker {
        MlpTracker {
            imp: match model {
                MemModelKind::EventDriven => MlpImpl::Event(EventOutstanding::default()),
                MemModelKind::ReferenceLazy => MlpImpl::Lazy(Vec::new()),
            },
            prof: None,
        }
    }

    #[inline]
    fn finish(&mut self, t0: Option<std::time::Instant>) {
        if let Some(p) = self.prof.as_mut() {
            p.finish(t0);
        }
    }

    fn note(&mut self, done: u64, now: u64) {
        let t0 = HeapProf::start(self.prof.is_some());
        match &mut self.imp {
            MlpImpl::Lazy(v) => {
                v.retain(|&d| d > now);
                v.push(done);
            }
            MlpImpl::Event(h) => h.note(done),
        }
        self.finish(t0);
    }

    fn outstanding(&mut self, now: u64) -> usize {
        let t0 = HeapProf::start(self.prof.is_some());
        let r = match &mut self.imp {
            MlpImpl::Lazy(v) => v.iter().filter(|&&d| d > now).count(),
            MlpImpl::Event(h) => h.outstanding(now),
        };
        self.finish(t0);
        r
    }
}

/// What kind of access the core is performing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// Demand data load.
    Load,
    /// Demand data store (write-allocate).
    Store,
    /// Instruction fetch.
    InstFetch,
}

/// Which level serviced an access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HitLevel {
    /// Hit in the L1 (I or D).
    L1,
    /// Missed L1, hit the LLC.
    Llc,
    /// Missed the LLC; serviced by DRAM (or merged into an outstanding
    /// DRAM-bound miss).
    Dram,
}

/// A serviced access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessOutcome {
    /// Cycle at which the data is available to the core.
    pub ready_at: u64,
    /// Level that supplied the data.
    pub level: HitLevel,
}

/// Which MSHR file ran out of capacity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MshrLevel {
    /// The L1D miss-status holding registers.
    L1d,
    /// The LLC (DRAM-bound) miss-status holding registers.
    Llc,
}

/// Typed MSHR-full backpressure: the structural limit on memory-level
/// parallelism, reported as an error instead of an abort so callers can
/// retry, reschedule, or surface it in run records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MshrFull {
    /// The MSHR file that was full.
    pub level: MshrLevel,
    /// Earliest cycle at which an entry frees — callers that track time can
    /// retry then instead of polling every cycle.
    pub retry_at: u64,
}

impl std::fmt::Display for MshrFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let level = match self.level {
            MshrLevel::L1d => "L1D",
            MshrLevel::Llc => "LLC",
        };
        write!(
            f,
            "{level} MSHRs full; earliest entry frees at cycle {}",
            self.retry_at
        )
    }
}

impl std::error::Error for MshrFull {}

/// Result of [`MemoryHierarchy::access`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessResult {
    /// The access was accepted; data ready at `ready_at`.
    Done(AccessOutcome),
    /// MSHRs were full; retry (the payload says which file and when a slot
    /// frees). This is the structural limit on memory-level parallelism.
    Rejected(MshrFull),
}

impl AccessResult {
    /// Converts to a `Result`, surfacing backpressure as the typed
    /// [`MshrFull`] error.
    pub fn outcome(self) -> Result<AccessOutcome, MshrFull> {
        match self {
            AccessResult::Done(out) => Ok(out),
            AccessResult::Rejected(full) => Err(full),
        }
    }

    /// Whether the access was rejected by full MSHRs.
    pub fn is_rejected(&self) -> bool {
        matches!(self, AccessResult::Rejected(_))
    }
}

/// Aggregate hierarchy statistics (beyond per-component counters).
///
/// Counting contract: every counter except `rejections` counts *accepted*
/// accesses only, and each logical access exactly once — a request bounced
/// with [`MshrFull`] and retried later contributes one `rejections` tick
/// per bounce and nothing else, so a backpressured run and an unconstrained
/// run of the same logical access sequence agree on every other field.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemStats {
    /// Demand loads accepted by the hierarchy.
    pub demand_loads: u64,
    /// Demand stores accepted by the hierarchy.
    pub demand_stores: u64,
    /// Instruction fetch line accesses accepted.
    pub inst_fetches: u64,
    /// Demand accesses that missed the LLC (went to DRAM).
    pub llc_demand_misses: u64,
    /// DRAM reads issued on behalf of prefetches.
    pub prefetch_reads: u64,
    /// DRAM reads issued on behalf of runahead execution.
    pub runahead_reads: u64,
    /// DRAM reads issued on behalf of wrong-path demand accesses.
    pub wrong_path_reads: u64,
    /// Writebacks sent to DRAM.
    pub writebacks: u64,
    /// Accesses rejected because MSHRs were full.
    pub rejections: u64,
}

/// The memory hierarchy the core talks to. See the [crate docs](crate) for
/// the model and an example.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    cfg: MemConfig,
    model: MemModelKind,
    l1i: Cache,
    l1d: Cache,
    llc: Cache,
    l1d_mshr: MshrFile,
    llc_mshr: MshrFile,
    prefetcher: StreamPrefetcher,
    dram: Dram,
    stats: MemStats,
    demand_outstanding: MlpTracker,
}

impl MemoryHierarchy {
    /// Creates a hierarchy from a configuration, using the default
    /// (event-driven) bookkeeping model.
    pub fn new(cfg: MemConfig) -> MemoryHierarchy {
        MemoryHierarchy::with_model(cfg, MemModelKind::default())
    }

    /// Creates a hierarchy running on an explicit bookkeeping model.
    pub fn with_model(cfg: MemConfig, model: MemModelKind) -> MemoryHierarchy {
        MemoryHierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            llc: Cache::new(cfg.llc),
            l1d_mshr: MshrFile::new(cfg.l1d_mshrs, model),
            llc_mshr: MshrFile::new(cfg.llc_mshrs, model),
            prefetcher: StreamPrefetcher::new(cfg.prefetcher),
            dram: Dram::new(cfg.dram),
            stats: MemStats::default(),
            demand_outstanding: MlpTracker::new(model),
            model,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// The bookkeeping model this hierarchy runs on.
    pub fn model(&self) -> MemModelKind {
        self.model
    }

    /// Performs an access at cycle `now`. `wrong_path` attributes any DRAM
    /// read this access causes to wrong-path execution in the statistics
    /// (the paper's runahead-overhead accounting).
    ///
    /// Admission is decided *before* any state changes: a rejected access
    /// leaves the caches, MSHRs, prefetcher, and statistics (other than
    /// `rejections`) untouched, so the mandatory retry replays it cleanly
    /// without double-counting anything.
    pub fn access(
        &mut self,
        addr: u64,
        kind: AccessKind,
        now: u64,
        wrong_path: bool,
    ) -> AccessResult {
        let is_write = kind == AccessKind::Store;
        let is_inst = kind == AccessKind::InstFetch;
        let line = line_addr(addr);

        // --- Admission (no mutation of architectural state; the event
        // model may advance its expiry heaps, which is not visible). The
        // probes mirror exactly the lookups the accepted path performs, so
        // acceptance here cannot turn into a structural conflict below.
        let l1_hit = if is_inst {
            self.l1i.probe(addr)
        } else {
            self.l1d.probe(addr)
        };
        // L1 miss: check the L1 MSHRs (data side only; the in-order fetch
        // unit has a single outstanding I-miss by construction).
        let l1d_merge = if !l1_hit && !is_inst {
            let merge = self.l1d_mshr.outstanding(line, now);
            if merge.is_none() && self.l1d_mshr.len(now) >= self.l1d_mshr.capacity() {
                self.stats.rejections += 1;
                return AccessResult::Rejected(MshrFull {
                    level: MshrLevel::L1d,
                    retry_at: self.l1d_mshr.earliest_release(now).unwrap_or(now + 1),
                });
            }
            merge
        } else {
            None
        };
        // Requests that reach the LLC and miss it need an LLC MSHR (a merge
        // with an outstanding DRAM-bound miss does not).
        if !l1_hit
            && l1d_merge.is_none()
            && !self.llc.probe(addr)
            && self.llc_mshr.outstanding(line, now).is_none()
            && self.llc_mshr.len(now) >= self.llc_mshr.capacity()
        {
            self.stats.rejections += 1;
            return AccessResult::Rejected(MshrFull {
                level: MshrLevel::Llc,
                retry_at: self.llc_mshr.earliest_release(now).unwrap_or(now + 1),
            });
        }

        // --- Accepted: count the access exactly once.
        match kind {
            AccessKind::Load => self.stats.demand_loads += 1,
            AccessKind::Store => self.stats.demand_stores += 1,
            AccessKind::InstFetch => self.stats.inst_fetches += 1,
        }

        // --- L1 ---
        let l1 = if is_inst {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        let l1_info = l1.access(addr, is_write);
        debug_assert_eq!(l1_info.hit, l1_hit, "probe agrees with access");
        if l1_info.hit {
            return AccessResult::Done(AccessOutcome {
                ready_at: now + self.cfg.l1_latency,
                level: HitLevel::L1,
            });
        }
        if let Some(done) = l1d_merge {
            // Merge with an in-flight L1 miss.
            return AccessResult::Done(AccessOutcome {
                ready_at: done,
                level: HitLevel::Llc,
            });
        }

        // --- LLC ---
        let llc_info = self.llc.access(addr, false);
        let ready_at;
        let level;
        if llc_info.hit {
            if llc_info.first_use_of_prefetch {
                self.prefetcher.on_prefetch_hit();
            }
            ready_at = now + self.cfg.l1_latency + self.cfg.llc_latency;
            level = HitLevel::Llc;
        } else {
            // LLC miss → DRAM, moderated by the LLC MSHRs.
            self.stats.llc_demand_misses += 1;
            let issue_at = now + self.cfg.l1_latency + self.cfg.llc_latency;
            if let Some(done) = self.llc_mshr.outstanding(line, now) {
                ready_at = done.max(issue_at);
                level = HitLevel::Dram;
            } else {
                let done = self.dram.read(line, issue_at);
                let outcome = self.llc_mshr.try_alloc(line, now, done);
                debug_assert_eq!(outcome, MshrOutcome::Allocated);
                if wrong_path {
                    self.stats.wrong_path_reads += 1;
                }
                self.demand_outstanding.note(done, now);
                // Fill the LLC now (tag-available model).
                if let Some(ev) = self.llc.fill(line, false) {
                    self.evict_inclusive(ev.line_addr, ev.dirty, done);
                }
                ready_at = done;
                level = HitLevel::Dram;
            }
        }

        // Train the prefetcher only on *accepted* L1D demand misses, and
        // only after the demand request itself has been issued: the demand
        // DRAM read goes to the memory controller ahead of the prefetch
        // reads it triggers (demand priority).
        if !is_inst {
            let pf_lines = self.prefetcher.on_demand_miss(addr);
            for pf in pf_lines {
                self.issue_prefetch(pf, now, false);
            }
        }

        // Fill L1 and track the outstanding miss in the L1D MSHRs.
        let l1 = if is_inst {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        if let Some(ev) = l1.fill(addr, is_write) {
            if ev.dirty {
                // Inclusive-ish: push dirty L1 victims down into the LLC.
                // When the LLC still holds the line, `fill` on the resident
                // copy is a dirty-merge: it ORs in the dirty bit and
                // promotes to MRU without allocating a second way (pinned
                // by `cache::tests::fill_on_resident_line_merges`).
                if self.llc.probe(ev.line_addr) {
                    self.llc.fill(ev.line_addr, true);
                } else {
                    self.writeback(ev.line_addr, now);
                }
            }
        }
        if !is_inst {
            self.l1d_mshr.try_alloc(line, now, ready_at);
        }

        AccessResult::Done(AccessOutcome { ready_at, level })
    }

    /// Issues a runahead prefetch of the line containing `addr` into the
    /// LLC. Runahead loads bypass the L1D MSHRs (they fill the LLC only, as
    /// PRE's prefetches do) but still consume LLC MSHRs and DRAM bandwidth.
    /// Returns whether a DRAM read was actually issued.
    pub fn runahead_prefetch(&mut self, addr: u64, now: u64) -> bool {
        self.issue_prefetch(line_addr(addr), now, true)
    }

    fn issue_prefetch(&mut self, pf_addr: u64, now: u64, runahead: bool) -> bool {
        let line = line_addr(pf_addr);
        if self.llc.probe(line) || self.llc_mshr.outstanding(line, now).is_some() {
            return false;
        }
        if self.llc_mshr.len(now) >= self.llc_mshr.capacity() {
            return false; // prefetches are dropped, never queued
        }
        // Unified issue-time model: every DRAM-bound request — demand or
        // prefetch — traverses the L1 + LLC lookup path before reaching
        // the memory controller, so prefetches get no unphysical head
        // start over the demand misses that triggered them.
        let done = self
            .dram
            .read(line, now + self.cfg.l1_latency + self.cfg.llc_latency);
        self.llc_mshr.try_alloc(line, now, done);
        if runahead {
            self.stats.runahead_reads += 1;
            // Runahead loads count toward measured MLP (the paper's Fig. 14
            // explicitly includes PRE's wrong-path/runahead loads in MLP).
            self.demand_outstanding.note(done, now);
        } else {
            self.stats.prefetch_reads += 1;
        }
        // Runahead fills are tagged `prefetched` too: both speculative fill
        // kinds count as a prefetch hit on first demand use (FDP feedback).
        if let Some(ev) = self.llc.fill_tagged(line, false, true) {
            self.evict_inclusive(ev.line_addr, ev.dirty, now);
        }
        true
    }

    /// Evicts a line from the LLC under inclusion: dirty inner (L1) copies
    /// are folded into the writeback decision before being invalidated.
    fn evict_inclusive(&mut self, victim_line: u64, llc_dirty: bool, now: u64) {
        let l1_dirty = self.l1d.invalidate(victim_line) == Some(true);
        self.l1i.invalidate(victim_line);
        if llc_dirty || l1_dirty {
            self.writeback(victim_line, now);
        }
    }

    fn writeback(&mut self, victim_line: u64, now: u64) {
        self.dram.write(victim_line, now);
        self.stats.writebacks += 1;
    }

    /// Whether the line containing `addr` is resident in the LLC or closer
    /// (used by the retire stage to classify a load as an "LLC miss" for the
    /// Critical Count Tables without disturbing cache state).
    pub fn probe_cached(&self, addr: u64) -> bool {
        self.l1d.probe(addr) || self.llc.probe(addr)
    }

    /// Number of demand LLC misses still outstanding at `now` — the quantity
    /// averaged for the paper's MLP figure (Fig. 14). Takes `&mut self`
    /// because the event-driven model retires completed entries here
    /// instead of rescanning them on every sample.
    pub fn outstanding_demand_misses(&mut self, now: u64) -> usize {
        self.demand_outstanding.outstanding(now)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// DRAM statistics (the memory-traffic figure reads `total()`).
    pub fn dram_stats(&self) -> &DramStats {
        self.dram.stats()
    }

    /// `(hits, misses)` of the L1D.
    pub fn l1d_stats(&self) -> (u64, u64) {
        self.l1d.stats()
    }

    /// `(hits, misses)` of the LLC.
    pub fn llc_stats(&self) -> (u64, u64) {
        self.llc.stats()
    }

    /// The prefetcher (read-only view for reports).
    pub fn prefetcher(&self) -> &StreamPrefetcher {
        &self.prefetcher
    }

    /// Enables host-side timing of the MSHR and MLP bookkeeping structures
    /// (see [`crate::prof`]). Idempotent; never changes simulated state.
    pub fn enable_prof(&mut self) {
        for mshr in [&mut self.l1d_mshr, &mut self.llc_mshr] {
            if mshr.prof.is_none() {
                mshr.prof = Some(Box::default());
            }
        }
        if self.demand_outstanding.prof.is_none() {
            self.demand_outstanding.prof = Some(Box::default());
        }
    }

    /// Detaches and returns the host timers (`None` when profiling was
    /// never enabled), summed across both MSHR files.
    pub fn take_prof(&mut self) -> Option<MemProfReport> {
        let l1d = self.l1d_mshr.prof.take();
        let llc = self.llc_mshr.prof.take();
        let mlp = self.demand_outstanding.prof.take();
        if l1d.is_none() && llc.is_none() && mlp.is_none() {
            return None;
        }
        let mut r = MemProfReport::default();
        for p in [l1d, llc].into_iter().flatten() {
            r.mshr_ns += p.ns;
            r.mshr_ops += p.ops;
        }
        if let Some(p) = mlp {
            r.mlp_ns = p.ns;
            r.mlp_ops = p.ops;
        }
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LINE_BYTES;

    fn no_pf() -> MemConfig {
        MemConfig {
            prefetcher: PrefetcherConfig {
                enabled: false,
                ..PrefetcherConfig::default()
            },
            ..MemConfig::default()
        }
    }

    fn done(r: AccessResult) -> AccessOutcome {
        r.outcome()
            .unwrap_or_else(|full| panic!("access unexpectedly backpressured: {full}"))
    }

    #[test]
    fn l1_llc_dram_levels() {
        let mut m = MemoryHierarchy::new(no_pf());
        let first = done(m.access(0x10000, AccessKind::Load, 0, false));
        assert_eq!(first.level, HitLevel::Dram);
        assert!(first.ready_at >= 20 + 86, "l1+llc+dram latency");

        let hit = done(m.access(0x10000, AccessKind::Load, first.ready_at, false));
        assert_eq!(hit.level, HitLevel::L1);
        assert_eq!(hit.ready_at, first.ready_at + 2);

        // Evict from L1 by filling 9 lines in the same L1 set (64 sets, 8 ways)
        // but not from the 16-way LLC: next access is an LLC hit.
        for i in 1..=8u64 {
            m.access(0x10000 + i * 64 * 64, AccessKind::Load, 10_000 * i, false);
        }
        let llc_hit = done(m.access(0x10000, AccessKind::Load, 1_000_000, false));
        assert_eq!(llc_hit.level, HitLevel::Llc);
        assert_eq!(llc_hit.ready_at, 1_000_000 + 2 + 18);
    }

    #[test]
    fn mshr_merge_same_line() {
        let mut m = MemoryHierarchy::new(no_pf());
        let a = done(m.access(0x20000, AccessKind::Load, 0, false));
        // Second miss to the same line while outstanding: merged, same-ish time.
        let b = done(m.access(0x20008, AccessKind::Load, 1, false));
        assert_eq!(b.level, HitLevel::L1, "line already filled tag-wise");
        let _ = a;
    }

    #[test]
    fn rejection_when_mshrs_full() {
        let mut cfg = no_pf();
        cfg.llc_mshrs = 2;
        cfg.l1d_mshrs = 2;
        let mut m = MemoryHierarchy::new(cfg);
        assert!(matches!(
            m.access(0x0, AccessKind::Load, 0, false),
            AccessResult::Done(_)
        ));
        assert!(matches!(
            m.access(0x10000, AccessKind::Load, 0, false),
            AccessResult::Done(_)
        ));
        let r = m.access(0x20000, AccessKind::Load, 0, false);
        let full = r.outcome().expect_err("third distinct line must reject");
        // The L1D MSHR file sits in front of the LLC's, so it is the one
        // that reports full here.
        assert_eq!(full.level, MshrLevel::L1d);
        assert!(full.retry_at > 0, "retry hint must point forward in time");
        assert_eq!(m.stats().rejections, 1);
        // The hint is honest: retrying at `retry_at` succeeds.
        assert!(matches!(
            m.access(0x20000, AccessKind::Load, full.retry_at, false),
            AccessResult::Done(_)
        ));
        // After the misses complete, capacity frees up.
        assert!(matches!(
            m.access(0x20000, AccessKind::Load, 100_000, false),
            AccessResult::Done(_)
        ));
    }

    /// The headline PR-6 regression: a reject-then-retry sequence must
    /// leave exactly the same statistics as an unconstrained run of the
    /// same logical accesses — a rejected access used to bump the demand
    /// counters, the cache hit/miss counters, and `llc_demand_misses`
    /// before bouncing, so every retry double-counted.
    #[test]
    fn reject_then_retry_counts_once() {
        let small = MemConfig {
            l1d_mshrs: 2,
            ..no_pf()
        };
        let mut constrained = MemoryHierarchy::new(small);
        let mut unconstrained = MemoryHierarchy::new(no_pf());

        // Three parallel misses to distinct lines: the third bounces off
        // the 2-entry L1D MSHR file and must be retried.
        let lines = [0x0u64, 0x10000, 0x20000];
        for &a in &lines {
            assert!(!unconstrained
                .access(a, AccessKind::Load, 0, false)
                .is_rejected());
        }
        assert!(!constrained
            .access(lines[0], AccessKind::Load, 0, false)
            .is_rejected());
        assert!(!constrained
            .access(lines[1], AccessKind::Load, 0, false)
            .is_rejected());
        let full = constrained
            .access(lines[2], AccessKind::Load, 0, false)
            .outcome()
            .expect_err("third miss must bounce");
        assert!(!constrained
            .access(lines[2], AccessKind::Load, full.retry_at, false)
            .is_rejected());

        let mut c = *constrained.stats();
        assert_eq!(c.rejections, 1);
        c.rejections = 0;
        assert_eq!(
            c,
            *unconstrained.stats(),
            "a bounced access must contribute nothing but its rejection tick"
        );
        // The cache-level counters agree too: the bounced access never
        // reached the L1D or the LLC.
        assert_eq!(constrained.l1d_stats(), unconstrained.l1d_stats());
        assert_eq!(constrained.llc_stats(), unconstrained.llc_stats());
    }

    /// Rejected accesses must not train the prefetcher: training a bounced
    /// access and its mandatory retry used to advance the stream detector
    /// twice per logical miss.
    #[test]
    fn prefetcher_trains_only_on_accepted_accesses() {
        let small = MemConfig {
            l1d_mshrs: 8,
            llc_mshrs: 3,
            ..MemConfig::default()
        };
        let mut constrained = MemoryHierarchy::new(small);
        let mut unconstrained = MemoryHierarchy::new(MemConfig::default());

        // Two far-apart misses plus the stream head pin all three LLC
        // MSHRs; the stream's second touch bounces at the LLC level, which
        // is where the old code had already trained the prefetcher.
        let (a, b) = (0x40_0000u64, 0x80_0000);
        let (s0, s1) = (0xC0_0000u64, 0xC0_0000 + LINE_BYTES);
        for h in [&mut constrained, &mut unconstrained] {
            assert!(!h.access(a, AccessKind::Load, 0, false).is_rejected());
            assert!(!h.access(b, AccessKind::Load, 1, false).is_rejected());
            assert!(!h.access(s0, AccessKind::Load, 2, false).is_rejected());
        }
        // s0 trained on both; its prefetches were dropped (constrained) or
        // issued (unconstrained) — `issued()` counts trained candidates
        // either way.
        let r = constrained.access(s1, AccessKind::Load, 3, false);
        let full = r.outcome().expect_err("LLC MSHRs are pinned");
        assert_eq!(full.level, MshrLevel::Llc);
        assert!(!constrained
            .access(s1, AccessKind::Load, full.retry_at, false)
            .is_rejected());
        assert!(!unconstrained
            .access(s1, AccessKind::Load, 3, false)
            .is_rejected());
        assert_eq!(
            constrained.prefetcher().issued(),
            unconstrained.prefetcher().issued(),
            "the bounced access must not have trained the stream detector"
        );
    }

    #[test]
    fn outstanding_demand_misses_counts_parallel_misses() {
        let mut m = MemoryHierarchy::new(no_pf());
        m.access(0x0, AccessKind::Load, 0, false);
        m.access(0x10000, AccessKind::Load, 0, false);
        m.access(0x20000, AccessKind::Load, 0, false);
        assert_eq!(m.outstanding_demand_misses(5), 3);
        assert_eq!(m.outstanding_demand_misses(1_000_000), 0);
    }

    #[test]
    fn wrong_path_attribution() {
        let mut m = MemoryHierarchy::new(no_pf());
        m.access(0x0, AccessKind::Load, 0, true);
        m.access(0x10000, AccessKind::Load, 0, false);
        assert_eq!(m.stats().wrong_path_reads, 1);
    }

    #[test]
    fn prefetcher_reduces_demand_miss_latency() {
        // Stream through memory with the prefetcher on and off; the prefetched
        // run must see more LLC hits.
        let mut on = MemoryHierarchy::new(MemConfig::default());
        let mut off = MemoryHierarchy::new(no_pf());
        let mut now = 0u64;
        let (mut llc_hits_on, mut llc_hits_off) = (0, 0);
        for i in 0..256u64 {
            let addr = 0x100000 + i * LINE_BYTES;
            if done(on.access(addr, AccessKind::Load, now, false)).level == HitLevel::Llc {
                llc_hits_on += 1;
            }
            if done(off.access(addr, AccessKind::Load, now, false)).level == HitLevel::Llc {
                llc_hits_off += 1;
            }
            now += 300;
        }
        assert!(
            llc_hits_on > llc_hits_off + 100,
            "prefetcher must convert DRAM misses into LLC hits: {llc_hits_on} vs {llc_hits_off}"
        );
        assert!(on.stats().prefetch_reads > 0);
    }

    #[test]
    fn stores_write_allocate_and_writeback() {
        let mut cfg = no_pf();
        cfg.l1d = CacheConfig {
            capacity_bytes: 1024,
            ways: 2,
        }; // 8 sets
        cfg.llc = CacheConfig {
            capacity_bytes: 2048,
            ways: 2,
        }; // 16 sets
        let mut m = MemoryHierarchy::new(cfg);
        // Write then force eviction through both levels.
        m.access(0x0, AccessKind::Store, 0, false);
        let mut now = 100_000u64;
        for i in 1..64u64 {
            m.access(i * 2048, AccessKind::Store, now, false);
            now += 100_000;
        }
        assert!(m.stats().writebacks > 0, "dirty lines must reach DRAM");
        assert!(m.dram_stats().writes > 0);
    }

    #[test]
    fn inst_fetches_use_l1i() {
        let mut m = MemoryHierarchy::new(no_pf());
        let a = done(m.access(0x40, AccessKind::InstFetch, 0, false));
        assert_eq!(a.level, HitLevel::Dram);
        let b = done(m.access(0x40, AccessKind::InstFetch, a.ready_at, false));
        assert_eq!(b.level, HitLevel::L1);
        // Data access to the same line does not hit (separate L1s) but hits LLC.
        let c = done(m.access(0x40, AccessKind::Load, a.ready_at, false));
        assert_eq!(c.level, HitLevel::Llc);
        assert_eq!(m.stats().inst_fetches, 2);
    }

    #[test]
    fn probe_cached_reflects_residency() {
        let mut m = MemoryHierarchy::new(no_pf());
        assert!(!m.probe_cached(0x5000));
        m.access(0x5000, AccessKind::Load, 0, false);
        assert!(m.probe_cached(0x5000));
    }

    /// Both bookkeeping models, driven with the identical access sequence,
    /// agree on every outcome and every statistic (the in-crate smoke
    /// version of the `cdf-sim equiv --mem` proof).
    #[test]
    fn models_agree_on_mixed_sequence() {
        let cfg = MemConfig {
            l1d_mshrs: 4,
            llc_mshrs: 3,
            ..MemConfig::default()
        };
        let mut event = MemoryHierarchy::with_model(cfg.clone(), MemModelKind::EventDriven);
        let mut lazy = MemoryHierarchy::with_model(cfg, MemModelKind::ReferenceLazy);
        assert_eq!(event.model(), MemModelKind::EventDriven);
        assert_eq!(lazy.model(), MemModelKind::ReferenceLazy);

        let mut now = 0u64;
        let mut x = 0x1234_5678u64;
        for i in 0..4000u64 {
            // Deterministic mixed pattern: streams, random lines, stores,
            // fetches, occasional runahead prefetches; bursty timing so
            // MSHRs saturate and drain.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            now += x % 7;
            let addr = match i % 4 {
                0 => 0x10_0000 + (i / 4) * LINE_BYTES, // ascending stream
                1 => (x >> 16) & 0x3F_FFC0,            // random line
                2 => 0x40_0000 + (x & 0xFFF8),         // hot region
                _ => 0x80_0000 + (i % 512) * 8,        // fetch region
            };
            let kind = match i % 4 {
                3 => AccessKind::InstFetch,
                2 => AccessKind::Store,
                _ => AccessKind::Load,
            };
            let a = event.access(addr, kind, now, i % 64 == 9);
            let b = lazy.access(addr, kind, now, i % 64 == 9);
            assert_eq!(a, b, "access {i} at cycle {now} diverged");
            if i % 16 == 5 {
                assert_eq!(
                    event.runahead_prefetch(addr ^ 0x1_0000, now),
                    lazy.runahead_prefetch(addr ^ 0x1_0000, now)
                );
            }
            assert_eq!(
                event.outstanding_demand_misses(now),
                lazy.outstanding_demand_misses(now),
                "MLP sample {i} diverged"
            );
        }
        assert_eq!(event.stats(), lazy.stats());
        assert_eq!(event.l1d_stats(), lazy.l1d_stats());
        assert_eq!(event.llc_stats(), lazy.llc_stats());
        assert_eq!(event.dram_stats(), lazy.dram_stats());
        assert!(
            event.stats().rejections > 0,
            "sequence exercised backpressure"
        );
    }
}
