//! Host-side timers for the memory system's event structures.
//!
//! The throughput push made MSHR and MLP bookkeeping event-driven (PR 6);
//! these counters measure what those heaps actually cost on the host so
//! the next optimization target is picked from a profile, not intuition.
//! The pattern mirrors the core's profiling sidecar: every timer hangs off
//! an `Option` that is `None` by default, so an unprofiled hierarchy runs
//! one null check per heap operation and nothing else, and enabling the
//! timers never changes simulated state (they only read the clock).

use std::time::Instant;

/// Nanoseconds + operation count for one timed boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HeapProf {
    /// Wall-clock nanoseconds inside the boundary.
    pub ns: u64,
    /// Operations timed.
    pub ops: u64,
}

impl HeapProf {
    /// Starts a timer when profiling is enabled (`enabled` is the
    /// containing `Option`'s `is_some()`).
    #[inline]
    pub fn start(enabled: bool) -> Option<Instant> {
        enabled.then(Instant::now)
    }

    /// Closes a timer opened by [`start`](Self::start).
    #[inline]
    pub fn finish(&mut self, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.ns += t0.elapsed().as_nanos() as u64;
            self.ops += 1;
        }
    }
}

/// What the memory system spent on the host, drained once per run by the
/// core's `take_profile` (private hierarchies) or the mix driver (shared
/// systems) and folded into the `shared_llc`/`mshr_heap`/`mlp_heap`
/// subsystem rows of the host profile.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemProfReport {
    /// MSHR completion-heap nanoseconds (admission checks + allocations).
    pub mshr_ns: u64,
    /// MSHR heap operations timed.
    pub mshr_ops: u64,
    /// MLP outstanding-heap nanoseconds (notes + samples).
    pub mlp_ns: u64,
    /// MLP heap operations timed.
    pub mlp_ops: u64,
    /// Shared-LLC access nanoseconds (multi-core systems only).
    pub shared_llc_ns: u64,
    /// Shared-LLC accesses timed.
    pub shared_llc_ops: u64,
}
