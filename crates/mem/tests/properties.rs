//! Property tests for the memory system: the set-associative cache against a
//! reference LRU model, MSHR bookkeeping, and DRAM timing sanity.

use cdf_mem::{Cache, CacheConfig, Dram, DramConfig, Mshr, MshrOutcome, LINE_BYTES};
use proptest::prelude::*;
use std::collections::VecDeque;

/// A straightforward reference model of a set-associative LRU cache.
struct ModelCache {
    sets: usize,
    ways: usize,
    /// Per set: line addresses, MRU first.
    lines: Vec<VecDeque<u64>>,
}

impl ModelCache {
    fn new(sets: usize, ways: usize) -> ModelCache {
        ModelCache {
            sets,
            ways,
            lines: vec![VecDeque::new(); sets],
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / LINE_BYTES) as usize) % self.sets
    }

    fn probe(&self, addr: u64) -> bool {
        let line = addr & !(LINE_BYTES - 1);
        self.lines[self.set_of(addr)].contains(&line)
    }

    fn fill(&mut self, addr: u64) -> Option<u64> {
        let line = addr & !(LINE_BYTES - 1);
        let set = self.set_of(addr);
        let q = &mut self.lines[set];
        if let Some(pos) = q.iter().position(|&l| l == line) {
            q.remove(pos);
            q.push_front(line);
            return None;
        }
        let victim = if q.len() == self.ways {
            q.pop_back()
        } else {
            None
        };
        q.push_front(line);
        victim
    }
}

proptest! {
    /// The cache's hit/miss/eviction behaviour matches the reference LRU
    /// model under arbitrary access/fill interleavings.
    #[test]
    fn cache_matches_lru_model(ops in prop::collection::vec((0u64..4096, any::<bool>()), 0..300)) {
        let mut cache = Cache::new(CacheConfig { capacity_bytes: 1024, ways: 2 }); // 8 sets
        let mut model = ModelCache::new(8, 2);
        for (addr_raw, is_fill) in ops {
            let addr = addr_raw * 8; // word-aligned addresses over 8 sets
            if is_fill {
                let ev = cache.fill(addr, false);
                let model_ev = model.fill(addr);
                prop_assert_eq!(ev.map(|e| e.line_addr), model_ev);
            } else {
                // probe is side-effect free in both implementations.
                prop_assert_eq!(cache.probe(addr), model.probe(addr));
            }
        }
    }

    /// MSHR occupancy never exceeds capacity; merges return the original
    /// completion; expiry frees capacity.
    #[test]
    fn mshr_capacity_invariants(ops in prop::collection::vec((0u64..16, 1u64..50), 1..100)) {
        let mut mshr = Mshr::new(4);
        let mut now = 0u64;
        for (line, dur) in ops {
            now += 3;
            let line_addr = line * 64;
            let outcome = mshr.try_alloc(line_addr, now, now + dur);
            prop_assert!(mshr.len(now) <= 4, "capacity exceeded");
            match outcome {
                MshrOutcome::Merged(done) => {
                    prop_assert_eq!(mshr.outstanding(line_addr, now), Some(done));
                    prop_assert!(done > now);
                }
                MshrOutcome::Allocated => {
                    prop_assert_eq!(mshr.outstanding(line_addr, now), Some(now + dur));
                }
                MshrOutcome::Full => {
                    prop_assert_eq!(mshr.len(now), 4);
                }
            }
        }
    }

    /// DRAM completions are causal (after issue + minimum latency), and
    /// identical request sequences give identical timings.
    #[test]
    fn dram_causal_and_deterministic(reqs in prop::collection::vec((0u64..0x10_0000, 0u64..64), 1..100)) {
        let cfg = DramConfig::default();
        let run = || {
            let mut d = Dram::new(cfg);
            let mut now = 0u64;
            let mut out = Vec::new();
            for &(addr, gap) in &reqs {
                now += gap;
                out.push(d.read(addr * 64, now));
            }
            out
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b, "deterministic");
        let mut now = 0u64;
        for (&(_, gap), &done) in reqs.iter().zip(&a) {
            now += gap;
            prop_assert!(done >= now + cfg.row_hit_latency(),
                "completion {done} before issue {now} + minimum latency");
        }
    }

    /// Per-bank service times never overlap: consecutive requests to the
    /// same bank are serialized by at least tCL.
    #[test]
    fn dram_same_bank_serializes(count in 2usize..20) {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        let bank_stride = (cfg.channels * cfg.bank_groups * cfg.banks_per_group) as u64 * 64;
        let mut done: Vec<u64> = Vec::new();
        for i in 0..count {
            done.push(d.read(i as u64 * bank_stride, 0));
        }
        let mut sorted = done.clone();
        sorted.sort();
        for w in sorted.windows(2) {
            prop_assert!(w[1] - w[0] >= cfg.t_cl, "bank busy time violated: {w:?}");
        }
    }
}
