//! Property tests for the memory system: the set-associative cache against a
//! reference LRU model, MSHR bookkeeping, and DRAM timing sanity.

use cdf_mem::{
    AccessKind, Cache, CacheConfig, Dram, DramConfig, EventMshr, MemConfig, MemModelKind,
    MemoryHierarchy, Mshr, MshrOutcome, LINE_BYTES,
};
use proptest::prelude::*;
use std::collections::VecDeque;

/// A straightforward reference model of a set-associative LRU cache.
struct ModelCache {
    sets: usize,
    ways: usize,
    /// Per set: line addresses, MRU first.
    lines: Vec<VecDeque<u64>>,
}

impl ModelCache {
    fn new(sets: usize, ways: usize) -> ModelCache {
        ModelCache {
            sets,
            ways,
            lines: vec![VecDeque::new(); sets],
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / LINE_BYTES) as usize) % self.sets
    }

    fn probe(&self, addr: u64) -> bool {
        let line = addr & !(LINE_BYTES - 1);
        self.lines[self.set_of(addr)].contains(&line)
    }

    fn fill(&mut self, addr: u64) -> Option<u64> {
        let line = addr & !(LINE_BYTES - 1);
        let set = self.set_of(addr);
        let q = &mut self.lines[set];
        if let Some(pos) = q.iter().position(|&l| l == line) {
            q.remove(pos);
            q.push_front(line);
            return None;
        }
        let victim = if q.len() == self.ways {
            q.pop_back()
        } else {
            None
        };
        q.push_front(line);
        victim
    }
}

proptest! {
    /// The cache's hit/miss/eviction behaviour matches the reference LRU
    /// model under arbitrary access/fill interleavings.
    #[test]
    fn cache_matches_lru_model(ops in prop::collection::vec((0u64..4096, any::<bool>()), 0..300)) {
        let mut cache = Cache::new(CacheConfig { capacity_bytes: 1024, ways: 2 }); // 8 sets
        let mut model = ModelCache::new(8, 2);
        for (addr_raw, is_fill) in ops {
            let addr = addr_raw * 8; // word-aligned addresses over 8 sets
            if is_fill {
                let ev = cache.fill(addr, false);
                let model_ev = model.fill(addr);
                prop_assert_eq!(ev.map(|e| e.line_addr), model_ev);
            } else {
                // probe is side-effect free in both implementations.
                prop_assert_eq!(cache.probe(addr), model.probe(addr));
            }
        }
    }

    /// MSHR occupancy never exceeds capacity; merges return the original
    /// completion; expiry frees capacity.
    #[test]
    fn mshr_capacity_invariants(ops in prop::collection::vec((0u64..16, 1u64..50), 1..100)) {
        let mut mshr = Mshr::new(4);
        let mut now = 0u64;
        for (line, dur) in ops {
            now += 3;
            let line_addr = line * 64;
            let outcome = mshr.try_alloc(line_addr, now, now + dur);
            prop_assert!(mshr.len(now) <= 4, "capacity exceeded");
            match outcome {
                MshrOutcome::Merged(done) => {
                    prop_assert_eq!(mshr.outstanding(line_addr, now), Some(done));
                    prop_assert!(done > now);
                }
                MshrOutcome::Allocated => {
                    prop_assert_eq!(mshr.outstanding(line_addr, now), Some(now + dur));
                }
                MshrOutcome::Full => {
                    prop_assert_eq!(mshr.len(now), 4);
                }
            }
        }
    }

    /// MSHR retry semantics: the lazy reference file, the event-driven
    /// file, and an eagerly-expired model agree on every outcome, on
    /// occupancy, and on `earliest_release` under arbitrary monotonic
    /// alloc/expire interleavings — and when an allocation reports Full,
    /// retrying at the reported release cycle succeeds.
    #[test]
    fn mshr_lazy_event_and_eager_agree(ops in prop::collection::vec((0u64..12, 0u64..8, 1u64..60), 1..150)) {
        let mut lazy = Mshr::new(3);
        let mut event = EventMshr::new(3);
        // Eager model: entries removed the moment their completion passes.
        let mut eager: Vec<(u64, u64)> = Vec::new();
        let mut now = 0u64;
        for (line, gap, dur) in ops {
            now += gap;
            eager.retain(|&(_, done)| done > now);
            let line_addr = line * 64;
            let expect = if let Some(&(_, done)) = eager.iter().find(|&&(l, _)| l == line_addr) {
                MshrOutcome::Merged(done)
            } else if eager.len() >= 3 {
                MshrOutcome::Full
            } else {
                eager.push((line_addr, now + dur));
                MshrOutcome::Allocated
            };
            let a = lazy.try_alloc(line_addr, now, now + dur);
            let b = event.try_alloc(line_addr, now, now + dur);
            prop_assert_eq!(a, expect, "lazy vs eager at cycle {}", now);
            prop_assert_eq!(b, expect, "event vs eager at cycle {}", now);
            let eager_min = eager.iter().map(|&(_, done)| done).min();
            prop_assert_eq!(lazy.len(now), eager.len());
            prop_assert_eq!(event.len(now), eager.len());
            prop_assert_eq!(lazy.earliest_release(now), eager_min);
            prop_assert_eq!(event.earliest_release(now), eager_min);
            if expect == MshrOutcome::Full {
                // The retry hint is honest: a slot is free at that cycle.
                let retry = lazy.earliest_release(now).expect("full file has entries");
                prop_assert!(retry > now);
                let mut l = lazy.clone();
                let mut e = event.clone();
                prop_assert_eq!(l.try_alloc(line_addr, retry, retry + dur), MshrOutcome::Allocated);
                prop_assert_eq!(e.try_alloc(line_addr, retry, retry + dur), MshrOutcome::Allocated);
            }
        }
    }

    /// The two full-hierarchy bookkeeping models are indistinguishable
    /// under arbitrary monotonic access sequences: same outcomes, same
    /// statistics, same MLP samples (the property-level version of the
    /// `cdf-sim equiv --mem` proof).
    #[test]
    fn hierarchy_models_agree(
        ops in prop::collection::vec((0u64..0x800, 0u64..3, 0u64..40, any::<bool>()), 1..250)
    ) {
        let cfg = MemConfig {
            l1d: CacheConfig { capacity_bytes: 1024, ways: 2 },
            llc: CacheConfig { capacity_bytes: 4096, ways: 4 },
            l1d_mshrs: 3,
            llc_mshrs: 2,
            ..MemConfig::default()
        };
        let mut event = MemoryHierarchy::with_model(cfg.clone(), MemModelKind::EventDriven);
        let mut lazy = MemoryHierarchy::with_model(cfg, MemModelKind::ReferenceLazy);
        let mut now = 0u64;
        for (addr_raw, kind_raw, gap, wrong_path) in ops {
            now += gap;
            // Offset away from address zero: a descending stream below the
            // first page would underflow the prefetcher's candidate lines.
            let addr = 0x10_0000 + addr_raw * 32;
            let kind = match kind_raw {
                0 => AccessKind::Load,
                1 => AccessKind::Store,
                _ => AccessKind::InstFetch,
            };
            let a = event.access(addr, kind, now, wrong_path);
            let b = lazy.access(addr, kind, now, wrong_path);
            prop_assert_eq!(a, b, "outcome diverged at cycle {}", now);
            prop_assert_eq!(
                event.outstanding_demand_misses(now),
                lazy.outstanding_demand_misses(now)
            );
        }
        prop_assert_eq!(event.stats(), lazy.stats());
        prop_assert_eq!(event.l1d_stats(), lazy.l1d_stats());
        prop_assert_eq!(event.llc_stats(), lazy.llc_stats());
        prop_assert_eq!(event.dram_stats(), lazy.dram_stats());
    }

    /// DRAM completions are causal (after issue + minimum latency), and
    /// identical request sequences give identical timings.
    #[test]
    fn dram_causal_and_deterministic(reqs in prop::collection::vec((0u64..0x10_0000, 0u64..64), 1..100)) {
        let cfg = DramConfig::default();
        let run = || {
            let mut d = Dram::new(cfg);
            let mut now = 0u64;
            let mut out = Vec::new();
            for &(addr, gap) in &reqs {
                now += gap;
                out.push(d.read(addr * 64, now));
            }
            out
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b, "deterministic");
        let mut now = 0u64;
        for (&(_, gap), &done) in reqs.iter().zip(&a) {
            now += gap;
            prop_assert!(done >= now + cfg.row_hit_latency(),
                "completion {done} before issue {now} + minimum latency");
        }
    }

    /// Per-bank service times never overlap: consecutive requests to the
    /// same bank are serialized by at least tCL.
    #[test]
    fn dram_same_bank_serializes(count in 2usize..20) {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        let bank_stride = (cfg.channels * cfg.bank_groups * cfg.banks_per_group) as u64 * 64;
        let mut done: Vec<u64> = Vec::new();
        for i in 0..count {
            done.push(d.read(i as u64 * bank_stride, 0));
        }
        let mut sorted = done.clone();
        sorted.sort();
        for w in sorted.windows(2) {
            prop_assert!(w[1] - w[0] >= cfg.t_cl, "bank busy time violated: {w:?}");
        }
    }
}
