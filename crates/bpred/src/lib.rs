//! # cdf-bpred — branch prediction for the CDF simulator
//!
//! The paper's baseline core uses a **TAGE-SC-L** predictor (Seznec, CBP
//! 2014). This crate implements:
//!
//! * [`TageScL`] — a TAGE core with geometric history lengths, a loop
//!   predictor (the "L") and a statistical corrector (the "SC");
//! * [`Bimodal`] — a simple 2-bit bimodal predictor used by ablation studies
//!   and tests;
//! * [`Btb`] — a set-associative branch target buffer;
//! * the [`DirectionPredictor`] trait that the fetch unit programs against.
//!
//! ## Speculative history
//!
//! Real fetch units update the global history speculatively at predict time
//! and repair it on a misprediction. The same protocol is used here: every
//! [`DirectionPredictor::predict`] call speculatively shifts the predicted
//! outcome into the history and returns a [`Prediction`] containing a
//! checkpoint; on a misprediction the core calls
//! [`DirectionPredictor::recover`] with the actual outcome, which rewinds the
//! history to the checkpoint and inserts the correct bit. The counter tables
//! themselves are updated in-order at resolve time via
//! [`DirectionPredictor::update`].
//!
//! ```
//! use cdf_bpred::{DirectionPredictor, TageScL};
//!
//! let mut p = TageScL::default();
//! // Train a strongly biased branch.
//! for _ in 0..64 {
//!     let pred = p.predict(0x40);
//!     p.update(0x40, true, &pred);
//! }
//! let pred = p.predict(0x40);
//! assert!(pred.taken);
//! # let _ = pred;
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod bimodal;
mod btb;
mod gshare;
mod history;
mod loop_pred;
mod sc;
mod tage;

pub use bimodal::Bimodal;
pub use btb::{Btb, BtbConfig, BtbEntry};
pub use gshare::{Gshare, Tournament};
pub use history::HistoryCheckpoint;
pub use tage::{Prediction, Provider, TageConfig, TageScL};

/// A conditional-branch direction predictor with speculative-history repair.
///
/// Implementations must be deterministic: the same sequence of calls always
/// produces the same predictions (allocation "randomness" comes from an
/// internal LFSR).
pub trait DirectionPredictor: std::fmt::Debug {
    /// Predicts the direction of the branch at `pc` and speculatively updates
    /// the global history with the predicted outcome.
    fn predict(&mut self, pc: u64) -> Prediction;

    /// Trains the predictor with the resolved outcome of a branch previously
    /// predicted with [`predict`](Self::predict). Call in program order at
    /// resolve/retire time.
    fn update(&mut self, pc: u64, taken: bool, pred: &Prediction);

    /// Repairs the speculative history after a misprediction: rewinds to the
    /// state captured in `pred` and inserts the actual outcome.
    fn recover(&mut self, pred: &Prediction, actual_taken: bool);

    /// Rewinds the speculative history to the state captured in `pred`
    /// *without* inserting an outcome — used when a non-branch flush (memory
    /// ordering or CDF dependence violation) discards speculated branches
    /// that will be re-fetched and re-predicted.
    fn rewind(&mut self, pred: &Prediction);

    /// A read-only direction estimate for `pc` that does not touch the
    /// speculative history or any counters. Used by runahead execution,
    /// which predicts branches while the main history must stay untouched.
    fn peek(&self, pc: u64) -> bool;
}
