//! The loop predictor component of TAGE-SC-L.

/// A loop-predictor entry tracking one loop-closing branch.
#[derive(Clone, Copy, Debug, Default)]
struct LoopEntry {
    tag: u16,
    /// Learned trip count (iterations the branch is taken before one
    /// not-taken).
    trip: u16,
    /// Iterations observed in the current traversal.
    current: u16,
    /// Confidence: saturates up every time a full traversal matches `trip`.
    conf: u8,
    /// Replacement age.
    age: u8,
    valid: bool,
}

/// Predicts loops of the form "taken `N` times, then not taken once".
///
/// Iteration counters are advanced at (in-order) update time rather than
/// speculatively at predict time; deep in-flight loop speculation therefore
/// sees a slightly stale count. This is a deliberate simplification of
/// Seznec's speculative loop-predictor state and only costs accuracy on loops
/// whose entire body fits in the fetch-to-retire window many times over.
#[derive(Clone, Debug)]
pub(crate) struct LoopPredictor {
    entries: Vec<LoopEntry>,
    index_bits: u32,
    conf_threshold: u8,
}

impl LoopPredictor {
    pub fn new(index_bits: u32) -> LoopPredictor {
        LoopPredictor {
            entries: vec![LoopEntry::default(); 1 << index_bits],
            index_bits,
            conf_threshold: 3,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.index_bits) - 1)) as usize
    }

    fn tag(&self, pc: u64) -> u16 {
        ((pc >> (2 + self.index_bits)) & 0x3FFF) as u16
    }

    /// Returns `(predicted_taken, confident)` if the entry hits.
    pub fn predict(&self, pc: u64) -> Option<(bool, bool)> {
        let e = &self.entries[self.index(pc)];
        if !e.valid || e.tag != self.tag(pc) {
            return None;
        }
        let taken = e.current + 1 < e.trip || e.trip == 0;
        Some((taken, e.conf >= self.conf_threshold && e.trip > 0))
    }

    /// Trains the entry with the resolved outcome. `was_useful` bumps the age
    /// so useful entries resist replacement.
    pub fn update(&mut self, pc: u64, taken: bool, was_useful: bool) {
        let idx = self.index(pc);
        let tag = self.tag(pc);
        let e = &mut self.entries[idx];
        if e.valid && e.tag == tag {
            if was_useful {
                e.age = (e.age + 1).min(7);
            }
            if taken {
                e.current = e.current.saturating_add(1);
                // Overran the learned trip count: relearn.
                if e.trip != 0 && e.current >= e.trip {
                    e.conf = 0;
                    e.trip = 0;
                }
            } else {
                let observed = e.current + 1; // iterations including the exit
                if e.trip == observed {
                    e.conf = (e.conf + 1).min(7);
                } else {
                    e.trip = observed;
                    e.conf = 0;
                }
                e.current = 0;
            }
        } else if !taken {
            // Allocate on a not-taken outcome (potential loop exit).
            if !e.valid || e.age == 0 {
                *e = LoopEntry {
                    tag,
                    trip: 0,
                    current: 0,
                    conf: 0,
                    age: 1,
                    valid: true,
                };
            } else {
                e.age -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `reps` traversals of a loop with `trip` taken iterations + exit,
    /// returning prediction accuracy over the last traversal.
    fn run_loop(p: &mut LoopPredictor, pc: u64, trip: usize, reps: usize) -> (usize, usize) {
        let (mut correct, mut total) = (0, 0);
        for rep in 0..reps {
            for i in 0..=trip {
                let taken = i < trip;
                if rep == reps - 1 {
                    if let Some((pred, conf)) = p.predict(pc) {
                        if conf {
                            total += 1;
                            if pred == taken {
                                correct += 1;
                            }
                        }
                    }
                }
                let useful = p.predict(pc).map(|(d, c)| c && d == taken).unwrap_or(false);
                p.update(pc, taken, useful);
            }
        }
        (correct, total)
    }

    #[test]
    fn learns_fixed_trip_count() {
        let mut p = LoopPredictor::new(6);
        let (correct, total) = run_loop(&mut p, 0x80, 7, 20);
        assert_eq!(total, 8, "confident on every iteration incl. exit");
        assert_eq!(correct, 8);
    }

    #[test]
    fn no_confidence_before_training() {
        let mut p = LoopPredictor::new(6);
        assert_eq!(p.predict(0x80), None);
        p.update(0x80, false, false); // allocates
        let (_, conf) = p.predict(0x80).unwrap();
        assert!(!conf);
    }

    #[test]
    fn changing_trip_count_drops_confidence() {
        let mut p = LoopPredictor::new(6);
        run_loop(&mut p, 0x80, 5, 10);
        // Switch to a different trip count: confidence must reset, then relearn.
        run_loop(&mut p, 0x80, 9, 2);
        let (correct, total) = run_loop(&mut p, 0x80, 9, 10);
        assert_eq!(correct, total);
        assert_eq!(total, 10);
    }

    #[test]
    fn tag_mismatch_misses() {
        let mut p = LoopPredictor::new(2); // tiny: forces index collisions
        run_loop(&mut p, 0x80, 3, 10);
        // Same index, different tag.
        let alias = 0x80 + (1 << (2 + 2 + 2)) * 4;
        assert_eq!(p.predict(alias), None);
    }
}
