//! Gshare and tournament predictors — mid-strength baselines between
//! [`crate::Bimodal`] and [`crate::TageScL`] for predictor-sensitivity
//! studies (CDF's branch-criticality benefit depends on what the underlying
//! predictor already catches).

use crate::history::History;
use crate::tage::Prediction;
use crate::{DirectionPredictor, Provider};

/// Classic gshare: a table of 2-bit counters indexed by `pc ⊕ folded global
/// history`.
///
/// ```
/// use cdf_bpred::{DirectionPredictor, Gshare};
/// let mut p = Gshare::new(12, 12);
/// let pred = p.predict(0x40);
/// p.update(0x40, true, &pred);
/// ```
#[derive(Clone, Debug)]
pub struct Gshare {
    counters: Vec<i8>,
    index_bits: u32,
    hist_len: u32,
    hist: History,
}

impl Gshare {
    /// Creates a gshare with `2^index_bits` counters using `hist_len` bits
    /// of global history (capped at 128).
    pub fn new(index_bits: u32, hist_len: u32) -> Gshare {
        Gshare {
            counters: vec![0; 1 << index_bits],
            index_bits,
            hist_len: hist_len.min(128),
            hist: History::default(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        let h = self.hist.fold(self.hist_len, self.index_bits);
        (((pc >> 2) ^ h) & ((1 << self.index_bits) as u64 - 1)) as usize
    }
}

impl Default for Gshare {
    fn default() -> Gshare {
        Gshare::new(13, 13)
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&mut self, pc: u64) -> Prediction {
        let idx = self.index(pc);
        let taken = self.counters[idx] >= 0;
        let checkpoint = self.hist.checkpoint();
        self.hist.push(pc, taken);
        Prediction {
            taken,
            provider: Provider::Base,
            pc,
            checkpoint,
            // Stash the predict-time index so update trains the entry the
            // prediction actually came from (history moves on).
            base_index: idx as u32,
            ..Prediction::not_taken()
        }
    }

    fn update(&mut self, _pc: u64, taken: bool, pred: &Prediction) {
        let c = &mut self.counters[pred.base_index as usize];
        *c = if taken {
            (*c + 1).min(1)
        } else {
            (*c - 1).max(-2)
        };
    }

    fn recover(&mut self, pred: &Prediction, actual_taken: bool) {
        self.hist.restore(&pred.checkpoint);
        self.hist.push(pred.pc, actual_taken);
    }

    fn rewind(&mut self, pred: &Prediction) {
        self.hist.restore(&pred.checkpoint);
    }

    fn peek(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 0
    }
}

/// Alpha-21264-style tournament: a per-branch chooser selects between a
/// bimodal component and a gshare component.
#[derive(Clone, Debug)]
pub struct Tournament {
    bimodal: Vec<i8>,
    gshare: Gshare,
    /// 2-bit chooser: ≥0 selects gshare.
    chooser: Vec<i8>,
    index_bits: u32,
}

impl Tournament {
    /// Creates a tournament predictor with `2^index_bits` entries per
    /// component.
    pub fn new(index_bits: u32) -> Tournament {
        Tournament {
            bimodal: vec![0; 1 << index_bits],
            gshare: Gshare::new(index_bits, index_bits),
            chooser: vec![0; 1 << index_bits],
            index_bits,
        }
    }

    fn pc_index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.index_bits) as u64 - 1)) as usize
    }
}

impl Default for Tournament {
    fn default() -> Tournament {
        Tournament::new(12)
    }
}

impl DirectionPredictor for Tournament {
    fn predict(&mut self, pc: u64) -> Prediction {
        let pidx = self.pc_index(pc);
        let bim_taken = self.bimodal[pidx] >= 0;
        let gsh = self.gshare.predict(pc); // advances the shared history
        let use_gshare = self.chooser[pidx] >= 0;
        let taken = if use_gshare { gsh.taken } else { bim_taken };
        Prediction {
            taken,
            // Reuse spare Prediction fields to carry component state to
            // update: alt = bimodal's prediction, tage = gshare's.
            alt_taken: bim_taken,
            tage_taken: gsh.taken,
            provider: Provider::Base,
            ..gsh
        }
    }

    fn update(&mut self, pc: u64, taken: bool, pred: &Prediction) {
        let pidx = self.pc_index(pc);
        // Chooser trains when the components disagree.
        if pred.tage_taken != pred.alt_taken {
            let c = &mut self.chooser[pidx];
            *c = if pred.tage_taken == taken {
                (*c + 1).min(1)
            } else {
                (*c - 1).max(-2)
            };
        }
        let b = &mut self.bimodal[pidx];
        *b = if taken {
            (*b + 1).min(1)
        } else {
            (*b - 1).max(-2)
        };
        self.gshare.update(pc, taken, pred);
    }

    fn recover(&mut self, pred: &Prediction, actual_taken: bool) {
        self.gshare.recover(pred, actual_taken);
    }

    fn rewind(&mut self, pred: &Prediction) {
        self.gshare.rewind(pred);
    }

    fn peek(&self, pc: u64) -> bool {
        let pidx = self.pc_index(pc);
        if self.chooser[pidx] >= 0 {
            self.gshare.peek(pc)
        } else {
            self.bimodal[pidx] >= 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<P: DirectionPredictor>(p: &mut P, seq: &[(u64, bool)], reps: usize) -> (u64, u64) {
        let (mut correct, mut total) = (0, 0);
        for _ in 0..reps {
            for &(pc, taken) in seq {
                let pred = p.predict(pc);
                if pred.taken == taken {
                    correct += 1;
                } else {
                    p.recover(&pred, taken);
                }
                p.update(pc, taken, &pred);
                total += 1;
            }
        }
        (correct, total)
    }

    #[test]
    fn gshare_learns_alternation() {
        // T,N,T,N needs history: bimodal can't, gshare can.
        let seq: Vec<_> = (0..2).map(|i| (0x100u64, i % 2 == 0)).collect();
        let mut g = Gshare::default();
        drive(&mut g, &seq, 200);
        let (c, n) = drive(&mut g, &seq, 200);
        assert!(c * 10 >= n * 9, "gshare: {c}/{n}");
    }

    #[test]
    fn gshare_learns_bias() {
        let mut g = Gshare::default();
        let (c, n) = drive(&mut g, &[(0x40, true)], 100);
        assert!(c * 10 >= n * 9);
    }

    #[test]
    fn tournament_beats_components_on_mixed_workload() {
        // Branch A is biased (bimodal-friendly), branch B alternates
        // (gshare-friendly). The tournament must learn both.
        let mut seq = Vec::new();
        for i in 0..8u64 {
            seq.push((0x100, true));
            seq.push((0x200, i % 2 == 0));
        }
        let mut t = Tournament::default();
        drive(&mut t, &seq, 100);
        let (c, n) = drive(&mut t, &seq, 100);
        assert!(c * 10 >= n * 9, "tournament: {c}/{n}");
    }

    #[test]
    fn tournament_recover_restores_history() {
        let mut t = Tournament::default();
        drive(&mut t, &[(0x40, true), (0x80, false)], 50);
        let snapshot = t.clone();
        let pred = t.predict(0x40);
        t.rewind(&pred);
        // Predictions after rewind match the un-speculated twin.
        let mut twin = snapshot;
        let p1 = t.predict(0x80);
        let p2 = twin.predict(0x80);
        assert_eq!(p1.taken, p2.taken);
    }

    #[test]
    fn gshare_update_uses_predict_time_index() {
        // Regression: training must hit the entry the prediction read, even
        // though the history advanced between predict and update.
        let mut g = Gshare::new(6, 6);
        for _ in 0..32 {
            let p1 = g.predict(0x40);
            let p2 = g.predict(0x80);
            g.update(0x40, true, &p1);
            g.update(0x80, false, &p2);
        }
        let (c, n) = {
            let mut correct = 0;
            for _ in 0..16 {
                let p1 = g.predict(0x40);
                if p1.taken {
                    correct += 1;
                }
                g.update(0x40, true, &p1);
                let p2 = g.predict(0x80);
                if !p2.taken {
                    correct += 1;
                }
                g.update(0x80, false, &p2);
            }
            (correct, 32)
        };
        assert!(c * 10 >= n * 8, "{c}/{n}");
    }
}
