//! The statistical corrector (SC) component of TAGE-SC-L.

use crate::history::History;

const NUM_SC_TABLES: usize = 3;
const SC_HIST: [u32; NUM_SC_TABLES] = [8, 16, 32];
const WEIGHT_MAX: i8 = 31;
const WEIGHT_MIN: i8 = -32;

/// GEHL-style statistical corrector: a few tables of signed weights indexed
/// by `pc ⊕ folded-history`, summed together with a bias contribution from
/// the TAGE prediction. If the magnitude of the sum clears a threshold and
/// its sign disagrees with TAGE, the SC overrides.
#[derive(Clone, Debug)]
pub(crate) struct StatisticalCorrector {
    tables: [Vec<i8>; NUM_SC_TABLES],
    /// Bias table indexed by pc and the TAGE prediction.
    bias: Vec<i8>,
    index_bits: u32,
    threshold: i32,
}

impl StatisticalCorrector {
    pub fn new(index_bits: u32) -> StatisticalCorrector {
        let mk = || vec![0i8; 1 << index_bits];
        StatisticalCorrector {
            tables: [mk(), mk(), mk()],
            bias: vec![0i8; 1 << (index_bits + 1)],
            index_bits,
            threshold: 12,
        }
    }

    fn index(&self, pc: u64, hist: &History, t: usize) -> u32 {
        let h = hist.fold(SC_HIST[t], self.index_bits);
        (((pc >> 2) ^ h ^ (t as u64) << 3) & ((1 << self.index_bits) as u64 - 1)) as u32
    }

    fn bias_index(&self, pc: u64, tage_taken: bool) -> u32 {
        ((((pc >> 2) << 1) | tage_taken as u64) & ((1 << (self.index_bits + 1)) as u64 - 1)) as u32
    }

    /// Computes the weighted sum and returns it with the table indices used
    /// (stored in the `Prediction` for the in-order update).
    pub fn sum(&self, pc: u64, hist: &History, tage_taken: bool) -> (i32, [u32; 4]) {
        let mut indices = [0u32; 4];
        let mut sum: i32 = 0;
        for (t, table) in self.tables.iter().enumerate() {
            let idx = self.index(pc, hist, t);
            indices[t] = idx;
            sum += (2 * table[idx as usize] as i32) + 1;
        }
        let bi = self.bias_index(pc, tage_taken);
        indices[3] = bi;
        sum += (2 * self.bias[bi as usize] as i32) + 1;
        // TAGE's own vote.
        sum += if tage_taken { 8 } else { -8 };
        (sum, indices)
    }

    /// Whether the sum is confident enough to override TAGE.
    pub fn confident(&self, sum: i32) -> bool {
        sum.abs() > self.threshold
    }

    /// Perceptron-style update: train when wrong or not confident.
    pub fn update(&mut self, taken: bool, sum: i32, indices: &[u32; 4]) {
        let predicted = sum >= 0;
        if predicted == taken && sum.abs() > self.threshold {
            return;
        }
        let step = if taken { 1 } else { -1 };
        for (table, &idx) in self.tables.iter_mut().zip(indices.iter()) {
            let w = &mut table[idx as usize];
            *w = (*w + step).clamp(WEIGHT_MIN, WEIGHT_MAX);
        }
        let b = &mut self.bias[indices[3] as usize];
        *b = (*b + step).clamp(WEIGHT_MIN, WEIGHT_MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_toward_bias() {
        let mut sc = StatisticalCorrector::new(8);
        let hist = History::default();
        for _ in 0..64 {
            let (sum, idx) = sc.sum(0x40, &hist, false);
            sc.update(true, sum, &idx);
        }
        let (sum, _) = sc.sum(0x40, &hist, false);
        assert!(sum > 0, "sum should have been pushed positive: {sum}");
        assert!(sc.confident(sum));
    }

    #[test]
    fn stops_training_when_confident_and_correct() {
        let mut sc = StatisticalCorrector::new(8);
        let hist = History::default();
        for _ in 0..1000 {
            let (sum, idx) = sc.sum(0x40, &hist, true);
            sc.update(true, sum, &idx);
        }
        // Weights saturate rather than growing without bound.
        let (sum, _) = sc.sum(0x40, &hist, true);
        let max_possible = 4 * (2 * WEIGHT_MAX as i32 + 1) + 8;
        assert!(sum <= max_possible);
    }

    #[test]
    fn history_changes_index() {
        let sc = StatisticalCorrector::new(8);
        let h0 = History::default();
        let mut h1 = History::default();
        for i in 0..32 {
            h1.push(0, i % 2 == 0);
        }
        let (_, i0) = sc.sum(0x40, &h0, true);
        let (_, i1) = sc.sum(0x40, &h1, true);
        assert_ne!(i0[..3], i1[..3]);
    }

    #[test]
    fn not_confident_near_zero() {
        let sc = StatisticalCorrector::new(8);
        assert!(!sc.confident(0));
        assert!(!sc.confident(12));
        assert!(sc.confident(13));
        assert!(sc.confident(-13));
    }
}
