//! Global and path history with checkpoint/rewind support.

/// Global branch history as a 128-bit shift register, plus a 32-bit path
/// history of low PC bits.
///
/// 128 bits of history is ample for the geometric history lengths used by the
/// default [`crate::TageConfig`] (max 128); checkpoints are cheap value
/// copies, which is how the fetch unit repairs speculation after a
/// misprediction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub(crate) struct History {
    pub ghr: u128,
    pub path: u32,
}

/// An opaque snapshot of predictor history, captured inside every
/// [`crate::Prediction`] so a misprediction can rewind speculation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HistoryCheckpoint {
    pub(crate) hist: History,
}

impl History {
    /// Shifts a branch outcome into the global history and the branch PC into
    /// the path history.
    pub fn push(&mut self, pc: u64, taken: bool) {
        self.ghr = (self.ghr << 1) | (taken as u128);
        self.path = (self.path << 2) | ((pc >> 2) & 0x3) as u32;
    }

    /// Captures a checkpoint.
    pub fn checkpoint(&self) -> HistoryCheckpoint {
        HistoryCheckpoint { hist: *self }
    }

    /// Restores from a checkpoint.
    pub fn restore(&mut self, cp: &HistoryCheckpoint) {
        *self = cp.hist;
    }

    /// Folds the youngest `len` bits of global history into `bits` bits by
    /// xor-ing `bits`-wide chunks together.
    pub fn fold(&self, len: u32, bits: u32) -> u64 {
        debug_assert!(len <= 128 && bits > 0 && bits <= 30);
        if len == 0 {
            return 0;
        }
        let mask: u128 = if len == 128 {
            u128::MAX
        } else {
            (1u128 << len) - 1
        };
        let mut h = self.ghr & mask;
        let mut out: u64 = 0;
        while h != 0 {
            out ^= (h as u64) & ((1u64 << bits) - 1);
            h >>= bits;
        }
        out
    }

    /// Folds the path history into `bits` bits.
    pub fn fold_path(&self, bits: u32) -> u64 {
        let p = self.path as u64;
        (p ^ (p >> bits) ^ (p >> (2 * bits))) & ((1u64 << bits) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shifts_in_outcomes() {
        let mut h = History::default();
        h.push(0, true);
        h.push(0, false);
        h.push(0, true);
        assert_eq!(h.ghr & 0b111, 0b101);
    }

    #[test]
    fn checkpoint_restore_round_trip() {
        let mut h = History::default();
        for i in 0..50 {
            h.push(i * 4, i % 3 == 0);
        }
        let cp = h.checkpoint();
        let saved = h;
        for i in 0..20 {
            h.push(i * 8, i % 2 == 0);
        }
        assert_ne!(h, saved);
        h.restore(&cp);
        assert_eq!(h, saved);
    }

    #[test]
    fn fold_respects_length() {
        let mut h = History::default();
        // History: 8 taken branches.
        for _ in 0..8 {
            h.push(0, true);
        }
        assert_eq!(h.fold(4, 4), 0b1111);
        assert_eq!(h.fold(8, 4), 0); // 0b1111 ^ 0b1111
        assert_eq!(h.fold(0, 4), 0);
    }

    #[test]
    fn fold_full_width() {
        let mut h = History::default();
        for i in 0..128 {
            h.push(0, i % 2 == 0);
        }
        // Must not panic or overflow at the 128-bit boundary.
        let _ = h.fold(128, 13);
    }

    #[test]
    fn different_histories_fold_differently() {
        let mut a = History::default();
        let mut b = History::default();
        for i in 0..16 {
            a.push(0, i % 2 == 0);
            b.push(0, i % 3 == 0);
        }
        assert_ne!(a.fold(16, 8), b.fold(16, 8));
    }
}
