//! The TAGE-SC-L direction predictor.
//!
//! Structure follows Seznec's CBP-2014 TAGE-SC-L at a reduced size: a bimodal
//! base table, several partially-tagged tables indexed with geometrically
//! increasing history lengths, a loop predictor, and a GEHL-style statistical
//! corrector. The paper's Table 1 core uses TAGE-SC-L; MPKI *shape* across
//! workloads is what matters for CDF (hard-to-predict branches get marked
//! critical), not bit-exact CBP behaviour.

use crate::history::{History, HistoryCheckpoint};
use crate::loop_pred::LoopPredictor;
use crate::sc::StatisticalCorrector;
use crate::DirectionPredictor;

/// Maximum number of tagged tables supported (configs may use fewer).
pub(crate) const MAX_TABLES: usize = 8;

/// Configuration for [`TageScL`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TageConfig {
    /// log2 of the number of bimodal base entries.
    pub base_bits: u32,
    /// log2 of the number of entries in each tagged table.
    pub table_bits: u32,
    /// Tag width in bits for the tagged tables.
    pub tag_bits: u32,
    /// Geometric history lengths, one per tagged table (youngest-first).
    pub hist_lengths: Vec<u32>,
    /// Enable the loop predictor (the "L").
    pub use_loop: bool,
    /// Enable the statistical corrector (the "SC").
    pub use_sc: bool,
    /// Updates between periodic useful-counter aging resets.
    pub useful_reset_period: u64,
}

impl Default for TageConfig {
    fn default() -> TageConfig {
        TageConfig {
            base_bits: 12,
            table_bits: 10,
            tag_bits: 9,
            hist_lengths: vec![4, 8, 16, 32, 64, 128],
            use_loop: true,
            use_sc: true,
            useful_reset_period: 1 << 18,
        }
    }
}

impl TageConfig {
    /// Approximate storage budget in bits (used by the energy/area model).
    pub fn storage_bits(&self) -> u64 {
        let base = (1u64 << self.base_bits) * 2;
        let per_entry = (self.tag_bits + 3 + 2) as u64;
        let tagged = self.hist_lengths.len() as u64 * (1u64 << self.table_bits) * per_entry;
        base + tagged
    }
}

/// Which component supplied the final prediction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Provider {
    /// The bimodal base table.
    Base,
    /// Tagged table `i` (0 = shortest history).
    Tagged(u8),
    /// The loop predictor override.
    Loop,
    /// The statistical corrector override.
    Sc,
}

/// The result of a prediction, carrying everything `update`/`recover` need.
///
/// Opaque internals record the table indices and tags computed at predict
/// time (histories will have moved on by update time) plus the history
/// checkpoint used for misprediction repair.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Component that provided the prediction.
    pub provider: Provider,
    pub(crate) pc: u64,
    pub(crate) indices: [u32; MAX_TABLES],
    pub(crate) tags: [u16; MAX_TABLES],
    pub(crate) base_index: u32,
    pub(crate) provider_table: Option<u8>,
    pub(crate) alt_taken: bool,
    pub(crate) tage_taken: bool,
    pub(crate) provider_weak: bool,
    pub(crate) loop_valid: bool,
    pub(crate) loop_taken: bool,
    pub(crate) sc_sum: i32,
    pub(crate) sc_indices: [u32; 4],
    pub(crate) checkpoint: HistoryCheckpoint,
}

impl Prediction {
    /// A trivially not-taken prediction (used by unconditional flows/tests).
    pub fn not_taken() -> Prediction {
        Prediction {
            taken: false,
            provider: Provider::Base,
            pc: 0,
            indices: [0; MAX_TABLES],
            tags: [0; MAX_TABLES],
            base_index: 0,
            provider_table: None,
            alt_taken: false,
            tage_taken: false,
            provider_weak: false,
            loop_valid: false,
            loop_taken: false,
            sc_sum: 0,
            sc_indices: [0; 4],
            checkpoint: HistoryCheckpoint::default(),
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct TaggedEntry {
    tag: u16,
    /// 3-bit signed counter in `-4..=3`; taken when `>= 0`.
    ctr: i8,
    /// 2-bit useful counter.
    useful: u8,
}

/// TAGE-SC-L predictor. See the [module docs](self) and [`TageConfig`].
#[derive(Clone, Debug)]
pub struct TageScL {
    cfg: TageConfig,
    /// Bimodal base: 2-bit counters in `-2..=1`; taken when `>= 0`.
    base: Vec<i8>,
    tables: Vec<Vec<TaggedEntry>>,
    hist: History,
    loop_pred: LoopPredictor,
    sc: StatisticalCorrector,
    /// 4-bit counter choosing alt prediction for weak newly-allocated entries.
    use_alt_on_na: i8,
    lfsr: u32,
    updates: u64,
}

impl Default for TageScL {
    fn default() -> TageScL {
        TageScL::new(TageConfig::default())
    }
}

impl TageScL {
    /// Creates a predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no history lengths, more than
    /// `MAX_TABLES`, or any history length over 128.
    pub fn new(cfg: TageConfig) -> TageScL {
        assert!(
            !cfg.hist_lengths.is_empty() && cfg.hist_lengths.len() <= MAX_TABLES,
            "between 1 and {MAX_TABLES} tagged tables required"
        );
        assert!(
            cfg.hist_lengths.iter().all(|&l| l <= 128),
            "history lengths must be <= 128"
        );
        let tables = cfg
            .hist_lengths
            .iter()
            .map(|_| vec![TaggedEntry::default(); 1 << cfg.table_bits])
            .collect();
        TageScL {
            base: vec![0; 1 << cfg.base_bits],
            tables,
            hist: History::default(),
            loop_pred: LoopPredictor::new(6),
            sc: StatisticalCorrector::new(10),
            use_alt_on_na: 0,
            lfsr: 0xACE1_u32,
            updates: 0,
            cfg,
        }
    }

    /// The configuration this predictor was built with.
    pub fn config(&self) -> &TageConfig {
        &self.cfg
    }

    fn base_index(&self, pc: u64) -> u32 {
        ((pc >> 2) & ((1 << self.cfg.base_bits) - 1)) as u32
    }

    fn table_index(&self, pc: u64, t: usize) -> u32 {
        let len = self.cfg.hist_lengths[t];
        let bits = self.cfg.table_bits;
        let h = self.hist.fold(len, bits);
        let p = self.hist.fold_path(bits.min(16));
        (((pc >> 2) ^ (pc >> (bits as u64 + 2)) ^ h ^ (p << 1)) & ((1 << bits) as u64 - 1)) as u32
    }

    fn table_tag(&self, pc: u64, t: usize) -> u16 {
        let len = self.cfg.hist_lengths[t];
        let bits = self.cfg.tag_bits;
        let h1 = self.hist.fold(len, bits);
        let h2 = self.hist.fold(len, bits - 1) << 1;
        (((pc >> 2) ^ h1 ^ h2) & ((1 << bits) as u64 - 1)) as u16
    }

    fn rand(&mut self) -> u32 {
        // 32-bit xorshift: deterministic allocation tie-breaking.
        let mut x = self.lfsr;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.lfsr = x;
        x
    }

    fn entry(&self, t: usize, idx: u32) -> &TaggedEntry {
        &self.tables[t][idx as usize]
    }
}

impl DirectionPredictor for TageScL {
    fn predict(&mut self, pc: u64) -> Prediction {
        let nt = self.cfg.hist_lengths.len();
        let mut indices = [0u32; MAX_TABLES];
        let mut tags = [0u16; MAX_TABLES];
        for t in 0..nt {
            indices[t] = self.table_index(pc, t);
            tags[t] = self.table_tag(pc, t);
        }
        let base_index = self.base_index(pc);
        let base_taken = self.base[base_index as usize] >= 0;

        // Provider = longest-history hit; alt = next hit (or base).
        let mut provider: Option<u8> = None;
        let mut alt: Option<u8> = None;
        for t in (0..nt).rev() {
            if self.entry(t, indices[t]).tag == tags[t] {
                if provider.is_none() {
                    provider = Some(t as u8);
                } else {
                    alt = Some(t as u8);
                    break;
                }
            }
        }
        let alt_taken = match alt {
            Some(t) => self.entry(t as usize, indices[t as usize]).ctr >= 0,
            None => base_taken,
        };
        let (tage_taken, provider_weak) = match provider {
            Some(t) => {
                let e = self.entry(t as usize, indices[t as usize]);
                let weak = e.ctr == 0 || e.ctr == -1;
                let pred = if weak && self.use_alt_on_na >= 0 {
                    alt_taken
                } else {
                    e.ctr >= 0
                };
                (pred, weak)
            }
            None => (base_taken, false),
        };

        let mut taken = tage_taken;
        let mut who = match provider {
            Some(t) => Provider::Tagged(t),
            None => Provider::Base,
        };

        // Loop predictor override.
        let (loop_valid, loop_taken) = if self.cfg.use_loop {
            match self.loop_pred.predict(pc) {
                Some((p, confident)) => {
                    if confident && p != taken {
                        taken = p;
                        who = Provider::Loop;
                    }
                    (true, p)
                }
                None => (false, false),
            }
        } else {
            (false, false)
        };

        // Statistical corrector.
        let (sc_sum, sc_indices) = if self.cfg.use_sc {
            self.sc.sum(pc, &self.hist, tage_taken)
        } else {
            (0, [0; 4])
        };
        if self.cfg.use_sc && who != Provider::Loop && self.sc.confident(sc_sum) {
            let sc_taken = sc_sum >= 0;
            if sc_taken != taken {
                taken = sc_taken;
                who = Provider::Sc;
            }
        }

        let checkpoint = self.hist.checkpoint();
        self.hist.push(pc, taken);

        Prediction {
            taken,
            provider: who,
            pc,
            indices,
            tags,
            base_index,
            provider_table: provider,
            alt_taken,
            tage_taken,
            provider_weak,
            loop_valid,
            loop_taken,
            sc_sum,
            sc_indices,
            checkpoint,
        }
    }

    fn update(&mut self, pc: u64, taken: bool, pred: &Prediction) {
        self.updates += 1;
        let nt = self.cfg.hist_lengths.len();

        if self.cfg.use_loop {
            self.loop_pred
                .update(pc, taken, pred.loop_valid && pred.loop_taken == taken);
        }
        if self.cfg.use_sc {
            self.sc.update(taken, pred.sc_sum, &pred.sc_indices);
        }

        // use_alt_on_na bookkeeping for weak providers.
        if let Some(pt) = pred.provider_table {
            if pred.provider_weak && pred.tage_taken != pred.alt_taken {
                let t = pt as usize;
                let e = self.entry(t, pred.indices[t]);
                if (e.ctr >= 0) == taken {
                    self.use_alt_on_na = (self.use_alt_on_na - 1).max(-8);
                } else {
                    self.use_alt_on_na = (self.use_alt_on_na + 1).min(7);
                }
            }
        }

        // Update provider counter (or base).
        match pred.provider_table {
            Some(t) => {
                let t = t as usize;
                let e = &mut self.tables[t][pred.indices[t] as usize];
                e.ctr = if taken {
                    (e.ctr + 1).min(3)
                } else {
                    (e.ctr - 1).max(-4)
                };
                // Useful-bit update when provider and alt disagree.
                if pred.tage_taken != pred.alt_taken {
                    if pred.tage_taken == taken {
                        e.useful = (e.useful + 1).min(3);
                    } else {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
                // Also train base if provider was weak (helps convergence).
                if pred.provider_weak {
                    let b = &mut self.base[pred.base_index as usize];
                    *b = if taken {
                        (*b + 1).min(1)
                    } else {
                        (*b - 1).max(-2)
                    };
                }
            }
            None => {
                let b = &mut self.base[pred.base_index as usize];
                *b = if taken {
                    (*b + 1).min(1)
                } else {
                    (*b - 1).max(-2)
                };
            }
        }

        // Allocate a new entry on a TAGE misprediction, in a table with a
        // longer history than the provider.
        if pred.tage_taken != taken {
            let start = pred.provider_table.map(|t| t as usize + 1).unwrap_or(0);
            if start < nt {
                // Find candidate tables with useful == 0.
                let mut allocated = false;
                let r = self.rand();
                // Slightly prefer shorter histories: skip the first candidate
                // with probability 1/2 once.
                let mut skip = (r & 1) == 1;
                for t in start..nt {
                    let idx = pred.indices[t] as usize;
                    if self.tables[t][idx].useful == 0 {
                        if skip && t + 1 < nt {
                            skip = false;
                            continue;
                        }
                        self.tables[t][idx] = TaggedEntry {
                            tag: pred.tags[t],
                            ctr: if taken { 0 } else { -1 },
                            useful: 0,
                        };
                        allocated = true;
                        break;
                    }
                }
                if !allocated {
                    // Decay useful counters on the candidate path.
                    for t in start..nt {
                        let idx = pred.indices[t] as usize;
                        let e = &mut self.tables[t][idx];
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
        }

        // Periodic aging of useful counters.
        if self.updates.is_multiple_of(self.cfg.useful_reset_period) {
            for table in &mut self.tables {
                for e in table {
                    e.useful >>= 1;
                }
            }
        }
    }

    fn recover(&mut self, pred: &Prediction, actual_taken: bool) {
        self.hist.restore(&pred.checkpoint);
        self.hist.push(pred.pc, actual_taken);
    }

    fn rewind(&mut self, pred: &Prediction) {
        self.hist.restore(&pred.checkpoint);
    }

    fn peek(&self, pc: u64) -> bool {
        // Read-only TAGE lookup: longest-history tag hit wins, base otherwise.
        // The loop predictor and statistical corrector are skipped — runahead
        // only needs a cheap direction estimate.
        let nt = self.cfg.hist_lengths.len();
        for t in (0..nt).rev() {
            let idx = self.table_index(pc, t);
            if self.entry(t, idx).tag == self.table_tag(pc, t) {
                return self.entry(t, idx).ctr >= 0;
            }
        }
        self.base[self.base_index(pc) as usize] >= 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train<P: DirectionPredictor>(p: &mut P, seq: &[(u64, bool)], reps: usize) -> (u64, u64) {
        let (mut correct, mut total) = (0, 0);
        for _ in 0..reps {
            for &(pc, taken) in seq {
                let pred = p.predict(pc);
                if pred.taken == taken {
                    correct += 1;
                } else {
                    p.recover(&pred, taken);
                }
                p.update(pc, taken, &pred);
                total += 1;
            }
        }
        (correct, total)
    }

    #[test]
    fn learns_strong_bias() {
        let mut p = TageScL::default();
        let (correct, total) = train(&mut p, &[(0x100, true)], 200);
        assert!(correct * 10 >= total * 9, "{correct}/{total}");
    }

    #[test]
    fn learns_alternating_pattern() {
        // T,N,T,N... requires 1 bit of history; base alone cannot learn it.
        let mut p = TageScL::default();
        let seq: Vec<_> = (0..2).map(|i| (0x200u64, i % 2 == 0)).collect();
        train(&mut p, &seq, 200); // warmup
        let (correct, total) = train(&mut p, &seq, 200);
        assert!(correct * 10 >= total * 9, "{correct}/{total}");
    }

    #[test]
    fn learns_short_loop_exit() {
        // Loop branch taken 7 times then not taken: needs history or loop pred.
        let mut seq = vec![(0x300u64, true); 7];
        seq.push((0x300, false));
        let mut p = TageScL::default();
        train(&mut p, &seq, 100); // warmup
        let (correct, total) = train(&mut p, &seq, 100);
        assert!(correct * 100 >= total * 95, "{correct}/{total}");
    }

    #[test]
    fn random_branch_is_hard() {
        // A never-repeating pseudo-random outcome stream: no predictor can do
        // much better than chance.
        let mut x = 0x1234_5678u64;
        let seq: Vec<_> = (0..10_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (0x400u64, (x >> 40) & 1 == 1)
            })
            .collect();
        let mut p = TageScL::default();
        let (correct, total) = train(&mut p, &seq, 1);
        assert!(correct * 100 <= total * 65, "{correct}/{total}");
    }

    #[test]
    fn distinct_pcs_do_not_interfere_much() {
        let mut p = TageScL::default();
        let seq: Vec<_> = (0..32).map(|i| (0x1000 + i * 64, i % 2 == 0)).collect();
        train(&mut p, &seq, 50);
        let (correct, total) = train(&mut p, &seq, 50);
        assert!(correct * 10 >= total * 9, "{correct}/{total}");
    }

    #[test]
    fn recover_rewinds_history() {
        let mut p = TageScL::default();
        let before = p.hist;
        let pred = p.predict(0x500);
        assert_ne!(p.hist, before);
        p.recover(&pred, !pred.taken);
        // History = checkpoint + actual outcome.
        let mut expect = before;
        expect.push(0x500, !pred.taken);
        assert_eq!(p.hist, expect);
    }

    #[test]
    fn config_without_sc_and_loop() {
        let cfg = TageConfig {
            use_loop: false,
            use_sc: false,
            ..TageConfig::default()
        };
        let mut p = TageScL::new(cfg);
        let (correct, total) = train(&mut p, &[(0x600, true)], 100);
        assert!(correct * 10 >= total * 9);
        // Provider is never Loop or Sc.
        let pred = p.predict(0x600);
        assert!(matches!(
            pred.provider,
            Provider::Base | Provider::Tagged(_)
        ));
    }

    #[test]
    fn storage_bits_positive_and_monotone() {
        let small = TageConfig {
            table_bits: 8,
            ..TageConfig::default()
        };
        let big = TageConfig::default();
        assert!(small.storage_bits() > 0);
        assert!(big.storage_bits() > small.storage_bits());
    }

    #[test]
    #[should_panic(expected = "tagged tables required")]
    fn empty_config_panics() {
        TageScL::new(TageConfig {
            hist_lengths: vec![],
            ..TageConfig::default()
        });
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut p = TageScL::default();
            let seq: Vec<_> = (0..100)
                .map(|i| (0x700 + (i % 7) * 16, i % 3 == 0))
                .collect();
            train(&mut p, &seq, 20)
        };
        assert_eq!(run(), run());
    }
}
