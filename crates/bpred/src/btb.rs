//! A set-associative branch target buffer.

/// Configuration for a [`Btb`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BtbConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl Default for BtbConfig {
    fn default() -> BtbConfig {
        BtbConfig { sets: 512, ways: 4 }
    }
}

/// One BTB entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BtbEntry {
    /// Branch PC (full tag; a real BTB would store a partial tag).
    pub pc: u64,
    /// Predicted target.
    pub target: u64,
    /// Whether this entry is an unconditional jump.
    pub unconditional: bool,
}

/// A set-associative BTB with LRU replacement.
///
/// In this simulator branch targets are architecturally known at decode
/// (targets are encoded in the static uop), so a BTB miss for a
/// predicted-taken branch costs a one-cycle fetch bubble rather than a full
/// misfetch — the same first-order effect as a real front end resteering from
/// decode.
///
/// ```
/// use cdf_bpred::{Btb, BtbConfig};
/// let mut btb = Btb::new(BtbConfig::default());
/// assert_eq!(btb.lookup(0x40), None);
/// btb.insert(0x40, 0x100, false);
/// assert_eq!(btb.lookup(0x40).unwrap().target, 0x100);
/// ```
#[derive(Clone, Debug)]
pub struct Btb {
    cfg: BtbConfig,
    /// `sets × ways` entries; `None` = invalid. Per-set LRU order is kept by
    /// position (index 0 = MRU).
    entries: Vec<Vec<Option<BtbEntry>>>,
    hits: u64,
    misses: u64,
}

impl Btb {
    /// Creates a BTB.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(cfg: BtbConfig) -> Btb {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.ways > 0, "ways must be nonzero");
        Btb {
            entries: vec![vec![None; cfg.ways]; cfg.sets],
            cfg,
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.cfg.sets - 1)
    }

    /// Looks up `pc`, promoting a hit to MRU. Returns the entry on a hit.
    pub fn lookup(&mut self, pc: u64) -> Option<BtbEntry> {
        let set = self.set_of(pc);
        let ways = &mut self.entries[set];
        if let Some(pos) = ways.iter().position(|e| e.map(|e| e.pc) == Some(pc)) {
            let entry = ways.remove(pos);
            ways.insert(0, entry);
            self.hits += 1;
            ways[0]
        } else {
            self.misses += 1;
            None
        }
    }

    /// Inserts or updates the mapping for `pc`, evicting the LRU way.
    pub fn insert(&mut self, pc: u64, target: u64, unconditional: bool) {
        let set = self.set_of(pc);
        let ways = &mut self.entries[set];
        let entry = Some(BtbEntry {
            pc,
            target,
            unconditional,
        });
        if let Some(pos) = ways.iter().position(|e| e.map(|e| e.pc) == Some(pc)) {
            ways.remove(pos);
        } else {
            ways.pop();
        }
        ways.insert(0, entry);
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Btb {
        Btb::new(BtbConfig { sets: 2, ways: 2 })
    }

    #[test]
    fn miss_then_hit() {
        let mut btb = small();
        assert!(btb.lookup(0x8).is_none());
        btb.insert(0x8, 0x80, false);
        let e = btb.lookup(0x8).unwrap();
        assert_eq!(e.target, 0x80);
        assert!(!e.unconditional);
        assert_eq!(btb.stats(), (1, 1));
    }

    #[test]
    fn update_existing_entry() {
        let mut btb = small();
        btb.insert(0x8, 0x80, false);
        btb.insert(0x8, 0x90, true);
        let e = btb.lookup(0x8).unwrap();
        assert_eq!(e.target, 0x90);
        assert!(e.unconditional);
    }

    #[test]
    fn lru_eviction() {
        let mut btb = small();
        // pcs 0x0, 0x10, 0x20 all map to set 0 (stride 16 with 2 sets).
        btb.insert(0x0, 1, false);
        btb.insert(0x10, 2, false);
        btb.lookup(0x0); // promote 0x0 to MRU
        btb.insert(0x20, 3, false); // evicts LRU = 0x10
        assert!(btb.lookup(0x0).is_some());
        assert!(btb.lookup(0x10).is_none());
        assert!(btb.lookup(0x20).is_some());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_panics() {
        Btb::new(BtbConfig { sets: 3, ways: 1 });
    }
}
