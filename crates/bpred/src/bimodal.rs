//! A simple bimodal (2-bit counter) predictor for ablations and tests.

use crate::history::History;
use crate::tage::Prediction;
use crate::{DirectionPredictor, Provider};

/// Classic bimodal predictor: a table of 2-bit saturating counters indexed by
/// PC. Used as the weakest baseline in predictor ablations and to sanity-check
/// that TAGE-SC-L's accuracy advantage shows up in branch-heavy workloads.
///
/// ```
/// use cdf_bpred::{Bimodal, DirectionPredictor};
/// let mut p = Bimodal::new(10);
/// let pred = p.predict(0x10);
/// p.update(0x10, true, &pred);
/// ```
#[derive(Clone, Debug)]
pub struct Bimodal {
    counters: Vec<i8>,
    index_bits: u32,
    hist: History,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^index_bits` counters.
    pub fn new(index_bits: u32) -> Bimodal {
        Bimodal {
            counters: vec![0; 1 << index_bits],
            index_bits,
            hist: History::default(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.index_bits) - 1)) as usize
    }
}

impl Default for Bimodal {
    fn default() -> Bimodal {
        Bimodal::new(12)
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&mut self, pc: u64) -> Prediction {
        let idx = self.index(pc);
        let taken = self.counters[idx] >= 0;
        let checkpoint = self.hist.checkpoint();
        self.hist.push(pc, taken);
        Prediction {
            taken,
            provider: Provider::Base,
            pc,
            checkpoint,
            ..Prediction::not_taken()
        }
    }

    fn update(&mut self, pc: u64, taken: bool, _pred: &Prediction) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        *c = if taken {
            (*c + 1).min(1)
        } else {
            (*c - 1).max(-2)
        };
    }

    fn recover(&mut self, pred: &Prediction, actual_taken: bool) {
        self.hist.restore(&pred.checkpoint);
        self.hist.push(pred.pc, actual_taken);
    }

    fn rewind(&mut self, pred: &Prediction) {
        self.hist.restore(&pred.checkpoint);
    }

    fn peek(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_bias_quickly() {
        let mut p = Bimodal::new(8);
        for _ in 0..4 {
            let pred = p.predict(0x20);
            p.update(0x20, true, &pred);
        }
        assert!(p.predict(0x20).taken);
    }

    #[test]
    fn cannot_learn_alternation() {
        let mut p = Bimodal::new(8);
        let mut correct = 0;
        for i in 0..100 {
            let taken = i % 2 == 0;
            let pred = p.predict(0x20);
            if pred.taken == taken {
                correct += 1;
            }
            p.update(0x20, taken, &pred);
        }
        // Bimodal oscillates on alternating patterns; ~50% at best.
        assert!(
            correct <= 60,
            "bimodal should not learn alternation: {correct}"
        );
    }

    #[test]
    fn aliasing_across_pcs() {
        let mut p = Bimodal::new(2); // 4 entries: pc 0x10 and 0x50 alias
        for _ in 0..4 {
            let pred = p.predict(0x10);
            p.update(0x10, true, &pred);
        }
        assert!(p.predict(0x50).taken, "aliased entry shares the counter");
    }
}
