//! Property tests for the branch predictors: crash-freedom on arbitrary
//! streams, determinism, speculative-history repair, and learning quality
//! ordering (TAGE ≥ bimodal on history-dependent patterns).

use cdf_bpred::{Bimodal, DirectionPredictor, TageScL};
use proptest::prelude::*;

/// Drives a predictor through an outcome stream with mispredict-repair, like
/// the core does, and returns accuracy.
fn drive<P: DirectionPredictor>(p: &mut P, stream: &[(u64, bool)]) -> (u64, u64) {
    let (mut correct, mut total) = (0, 0);
    for &(pc, taken) in stream {
        let pred = p.predict(pc);
        if pred.taken == taken {
            correct += 1;
        } else {
            p.recover(&pred, taken);
        }
        p.update(pc, taken, &pred);
        total += 1;
    }
    (correct, total)
}

proptest! {
    /// Any interleaving of predicts/updates/recovers is panic-free and
    /// deterministic, for both predictors.
    #[test]
    fn predictors_total_and_deterministic(
        stream in prop::collection::vec((0u64..64, any::<bool>()), 1..300)
    ) {
        let stream: Vec<(u64, bool)> = stream.into_iter().map(|(pc, t)| (pc * 4, t)).collect();
        let mut t1 = TageScL::default();
        let mut t2 = TageScL::default();
        prop_assert_eq!(drive(&mut t1, &stream), drive(&mut t2, &stream));
        let mut b1 = Bimodal::default();
        let mut b2 = Bimodal::default();
        prop_assert_eq!(drive(&mut b1, &stream), drive(&mut b2, &stream));
    }

    /// `peek` never disturbs state: interleaving peeks anywhere in the
    /// stream leaves predictions unchanged.
    #[test]
    fn peek_is_pure(stream in prop::collection::vec((0u64..32, any::<bool>()), 1..150)) {
        let stream: Vec<(u64, bool)> = stream.into_iter().map(|(pc, t)| (pc * 4, t)).collect();
        let mut with_peeks = TageScL::default();
        let mut without = TageScL::default();
        let (mut c1, mut c2) = (0u64, 0u64);
        for &(pc, taken) in &stream {
            let _ = with_peeks.peek(pc ^ 0x40);
            let _ = with_peeks.peek(pc);
            let p1 = with_peeks.predict(pc);
            let p2 = without.predict(pc);
            prop_assert_eq!(p1.taken, p2.taken);
            c1 += (p1.taken == taken) as u64;
            c2 += (p2.taken == taken) as u64;
            if p1.taken != taken {
                with_peeks.recover(&p1, taken);
                without.recover(&p2, taken);
            }
            with_peeks.update(pc, taken, &p1);
            without.update(pc, taken, &p2);
        }
        prop_assert_eq!(c1, c2);
    }

    /// Speculative history repair: predicting a burst of branches and then
    /// rewinding to the first leaves the predictor exactly where recovering
    /// immediately would.
    #[test]
    fn rewind_discards_speculation(depth in 1usize..16, probe in 0u64..64) {
        let train: Vec<(u64, bool)> = (0..200).map(|i| ((i % 7) * 4, i % 3 == 0)).collect();

        let mut a = TageScL::default();
        drive(&mut a, &train);
        let mut b = a.clone();

        // a: speculate `depth` branches deep, then rewind to the first.
        let first = a.predict(0x100);
        for d in 0..depth {
            let _ = a.predict(0x200 + d as u64 * 4);
        }
        a.rewind(&first);

        // b: never speculated at all (predict captures, rewind restores).
        let first_b = b.predict(0x100);
        b.rewind(&first_b);

        // Both must agree on the next prediction everywhere we probe.
        prop_assert_eq!(a.peek(probe * 4), b.peek(probe * 4));
        let pa = a.predict(probe * 4);
        let pb = b.predict(probe * 4);
        prop_assert_eq!(pa.taken, pb.taken);
    }

    /// On strongly biased branches both predictors converge to high accuracy.
    #[test]
    fn biased_branch_learned_by_all(taken in any::<bool>()) {
        let stream: Vec<(u64, bool)> = (0..200).map(|_| (0x40, taken)).collect();
        let mut t = TageScL::default();
        let (c, n) = drive(&mut t, &stream);
        prop_assert!(c * 10 >= n * 9, "TAGE {c}/{n}");
        let mut b = Bimodal::default();
        let (c, n) = drive(&mut b, &stream);
        prop_assert!(c * 10 >= n * 9, "bimodal {c}/{n}");
    }
}

/// TAGE beats bimodal on a short history-dependent pattern (the reason the
/// paper's baseline carries TAGE-SC-L at all).
#[test]
fn tage_beats_bimodal_on_patterns() {
    // Period-3 pattern: T T N ...
    let stream: Vec<(u64, bool)> = (0..3000).map(|i| (0x80, i % 3 != 2)).collect();
    let mut t = TageScL::default();
    let (tc, tn) = drive(&mut t, &stream);
    let mut b = Bimodal::default();
    let (bc, bn) = drive(&mut b, &stream);
    let tage_acc = tc as f64 / tn as f64;
    let bim_acc = bc as f64 / bn as f64;
    assert!(
        tage_acc > bim_acc + 0.15,
        "TAGE {tage_acc:.3} must clearly beat bimodal {bim_acc:.3}"
    );
}
