//! Simulator-throughput measurement: simulated cycles per wall-clock
//! second, per implementation variant, on a fixed case list.
//!
//! The case list is the micro/macro suite behind the
//! `criterion_throughput` bench and the `throughput-gate` CI binary. Each
//! case pins one [`CaseAxis`] — the implementation pair it compares:
//!
//! * **scheduler micro** — `stall_window`: a pointer-chase LLC miss
//!   followed by a long dependent ALU chain, looped. The window fills with
//!   waiting uops behind the miss, so a per-cycle O(RS) scan pays its full
//!   cost while doing no useful work; the event-driven scheduler idles.
//! * **scheduler macro** — registry sweep kernels (`astar_like`,
//!   `mcf_like`) under baseline and CDF, at the default window and the
//!   Fig. 17 scaled 512-ROB window, end to end.
//! * **mem micro** — `mshr_churn`: streams of independent hashed loads
//!   with inflated MSHR files (128 L1D / 256 LLC entries), so the lazy
//!   reference pays its O(capacity) rescans on every access while the
//!   event-driven wheel pops nothing.
//! * **mem macro** — memory-bound registry kernels (`mcf_like`,
//!   `lbm_like`) under baseline at the default window, end to end.
//!
//! Every case runs under both variants of its axis; cycle counts are
//! asserted identical between the two (the equivalence contract, enforced
//! even in the benchmark), so cycles/second is the only thing that may
//! differ.

use cdf_core::{Core, CoreConfig, MemModelKind, SchedulerKind};
use cdf_isa::{AluOp, ArchReg::*, MemoryImage, Program, ProgramBuilder};
use cdf_mem::MemConfig;
use cdf_sim::json::{field, Json};
use cdf_sim::Mechanism;
use cdf_workloads::{registry, GenConfig};
use std::time::Instant;

pub use cdf_sim::schema::THROUGHPUT as THROUGHPUT_SCHEMA;

/// Which implementation pair a case exercises: the harness varies exactly
/// one runtime-selectable subsystem per case and pins the other to its
/// default, so a wall-clock ratio is attributable to a single swap.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CaseAxis {
    /// Event-driven wakeup/select vs the reference RS scan
    /// (rows `<case>/event` and `<case>/scan`).
    Scheduler,
    /// Event-driven memory bookkeeping vs the lazy rescanning reference
    /// (rows `<case>/mem-event` and `<case>/mem-lazy`).
    MemModel,
}

impl CaseAxis {
    /// The two `(row label, scheduler, mem model)` variants of this axis,
    /// event-driven first.
    pub fn variants(self) -> [(&'static str, SchedulerKind, MemModelKind); 2] {
        match self {
            CaseAxis::Scheduler => [
                ("event", SchedulerKind::EventDriven, MemModelKind::default()),
                (
                    "scan",
                    SchedulerKind::ReferenceScan,
                    MemModelKind::default(),
                ),
            ],
            CaseAxis::MemModel => [
                (
                    "mem-event",
                    SchedulerKind::default(),
                    MemModelKind::EventDriven,
                ),
                (
                    "mem-lazy",
                    SchedulerKind::default(),
                    MemModelKind::ReferenceLazy,
                ),
            ],
        }
    }
}

/// One named simulation case: a program plus a core configuration (without
/// the implementation choice, which the harness varies per its axis) and an
/// instruction cap.
#[derive(Debug)]
pub struct ThroughputCase {
    /// Case name, e.g. `stall_window` or `mcf_like/cdf/rob512`.
    pub name: String,
    /// The program to simulate.
    pub program: Program,
    /// Its initial memory image.
    pub memory: MemoryImage,
    /// Core configuration template (scheduler/mem model overridden per run).
    pub cfg: CoreConfig,
    /// Instruction cap per run.
    pub instructions: u64,
    /// Which implementation pair this case compares.
    pub axis: CaseAxis,
}

/// One measurement: a case run under one variant of its axis.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// `<case>/<event|scan|mem-event|mem-lazy>`.
    pub name: String,
    /// Simulated cycles per run (identical across variants by the
    /// equivalence contract).
    pub simulated_cycles: u64,
    /// Best-of-N wall-clock seconds for one run.
    pub wall_seconds: f64,
}

impl ThroughputRow {
    /// Simulated cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.simulated_cycles as f64 / self.wall_seconds
    }
}

/// Streams of mutually independent hashed loads: nothing ever waits on a
/// previous load, so misses pile up to the MSHR limit and every access
/// queries near-full files — the lazy model's O(capacity) rescans dominate
/// while the event wheel stays O(1).
fn mshr_churn_program(trips: i64) -> (Program, MemoryImage) {
    let mut b = ProgramBuilder::new();
    b.movi(R1, trips);
    b.movi(R12, 0x9E37_79B9);
    b.movi(R13, 0x85EB_CA6B);
    b.movi(R15, 0xC2B2_AE35);
    b.movi(R17, 0x27D4_EB2F);
    b.movi(R9, (1 << 22) - 1);
    let top = b.label("top");
    b.bind(top).expect("fresh label");
    for (mult, addr, dst) in [
        (R12, R10, R2),
        (R13, R11, R3),
        (R15, R14, R4),
        (R17, R16, R5),
    ] {
        b.mul(addr, R1, mult);
        b.alu(AluOp::And, addr, addr, R9);
        b.load_abs(dst, addr, 8, 0x1000_0000);
    }
    b.addi(R1, R1, -1);
    b.brnz(R1, top);
    b.halt();
    (b.build().expect("valid program"), MemoryImage::new())
}

fn stall_window_program(trips: i64) -> (Program, MemoryImage) {
    let mut b = ProgramBuilder::new();
    b.movi(R1, trips);
    b.movi(R12, 0x9E37_79B9);
    b.movi(R9, (1 << 20) - 1);
    let top = b.label("top");
    b.bind(top).expect("fresh label");
    b.mul(R10, R1, R12);
    b.alu(AluOp::And, R10, R10, R9);
    b.load_abs(R5, R10, 8, 0x1000_0000);
    for _ in 0..60 {
        b.alu(AluOp::Add, R6, R6, R5); // dependent chain stuck behind the miss
    }
    b.addi(R1, R1, -1);
    b.brnz(R1, top);
    b.halt();
    (b.build().expect("valid program"), MemoryImage::new())
}

/// Builds the full micro + macro case list. `quick` shrinks the instruction
/// caps for CI smoke runs; the case list itself is identical.
pub fn throughput_cases(quick: bool) -> Vec<ThroughputCase> {
    let instructions: u64 = if quick { 30_000 } else { 150_000 };
    let mut cases = Vec::new();

    let (program, memory) = stall_window_program(1 << 20);
    cases.push(ThroughputCase {
        name: "stall_window".to_string(),
        program,
        memory,
        cfg: CoreConfig::default(),
        instructions,
        axis: CaseAxis::Scheduler,
    });

    let (program, memory) = mshr_churn_program(1 << 20);
    cases.push(ThroughputCase {
        name: "mshr_churn".to_string(),
        program,
        memory,
        cfg: CoreConfig {
            mem: MemConfig {
                l1d_mshrs: 128,
                llc_mshrs: 256,
                ..MemConfig::default()
            },
            ..CoreConfig::default()
        },
        instructions,
        axis: CaseAxis::MemModel,
    });

    let gen = GenConfig {
        seed: 0xC0FFEE,
        scale: 0.25,
        iters: u64::MAX / 4,
    };
    for name in ["astar_like", "mcf_like"] {
        let w = registry::lookup(name, &gen).expect("known workload");
        for mech in [Mechanism::Baseline, Mechanism::Cdf] {
            for rob in [352usize, 512] {
                cases.push(ThroughputCase {
                    name: format!("{name}/{}/rob{rob}", mech.label()),
                    program: w.program.clone(),
                    memory: w.memory.clone(),
                    cfg: CoreConfig {
                        mode: mech.mode(),
                        ..CoreConfig::default().with_scaled_window(rob)
                    },
                    instructions,
                    axis: CaseAxis::Scheduler,
                });
            }
        }
    }
    // Memory-bound macro cells run with the same inflated MSHR files as
    // the `mshr_churn` micro: at the Table-1 sizes (32/40 entries) the
    // lazy rescans cost too little to measure, and the point of these
    // cells is the bookkeeping cost in the high-MLP regime the event
    // wheels were built for. Both variants still simulate identical
    // cycles — the config is shared; only the bookkeeping differs.
    for name in ["mcf_like", "lbm_like"] {
        let w = registry::lookup(name, &gen).expect("known workload");
        cases.push(ThroughputCase {
            name: format!("{name}/mem"),
            program: w.program.clone(),
            memory: w.memory.clone(),
            cfg: CoreConfig {
                mem: MemConfig {
                    l1d_mshrs: 128,
                    llc_mshrs: 256,
                    ..MemConfig::default()
                },
                ..CoreConfig::default()
            },
            instructions,
            axis: CaseAxis::MemModel,
        });
    }
    cases
}

/// Runs one case once under an explicit scheduler and memory model;
/// returns (cycles, wall seconds).
pub fn run_once(
    case: &ThroughputCase,
    scheduler: SchedulerKind,
    mem_model: MemModelKind,
) -> (u64, f64) {
    let cfg = CoreConfig {
        scheduler,
        mem_model,
        ..case.cfg.clone()
    };
    let mut core = Core::new(&case.program, case.memory.clone(), cfg);
    let start = Instant::now();
    let stats = core.run(case.instructions);
    (stats.cycles, start.elapsed().as_secs_f64())
}

/// Runs one case once under the event-driven variant of its axis with the
/// host self-profiler attached; returns the finalized [`cdf_core::HostProfile`].
/// Backs `throughput-gate --profile-out`, which attributes the gate's own
/// wall time to pipeline stages and subsystems per case.
pub fn profile_once(case: &ThroughputCase) -> cdf_core::HostProfile {
    let (_, scheduler, mem_model) = case.axis.variants()[0];
    let cfg = CoreConfig {
        scheduler,
        mem_model,
        ..case.cfg.clone()
    };
    let mut core = Core::new(&case.program, case.memory.clone(), cfg);
    core.enable_prof();
    let start = Instant::now();
    core.run(case.instructions);
    core.take_profile(start.elapsed().as_nanos() as u64)
        .expect("profiling was enabled")
}

/// Measures every case under both variants of its axis, best wall time of
/// `repeats` runs each, asserting the equivalence contract (identical
/// cycle counts) along the way.
pub fn measure(cases: &[ThroughputCase], repeats: u32) -> Vec<ThroughputRow> {
    let mut rows = Vec::new();
    for case in cases {
        let mut cycles_seen = None;
        for (label, sched, mem_model) in case.axis.variants() {
            let mut best = f64::MAX;
            let mut cycles = 0;
            for _ in 0..repeats.max(1) {
                let (c, dt) = run_once(case, sched, mem_model);
                cycles = c;
                best = best.min(dt);
            }
            match cycles_seen {
                None => cycles_seen = Some(cycles),
                Some(prev) => assert_eq!(
                    prev, cycles,
                    "{}: variants disagree on simulated cycles",
                    case.name
                ),
            }
            rows.push(ThroughputRow {
                name: format!("{}/{label}", case.name),
                simulated_cycles: cycles,
                wall_seconds: best,
            });
        }
    }
    rows
}

/// Serializes rows as a `cdf-throughput/1` document.
pub fn rows_json(rows: &[ThroughputRow], quick: bool) -> Json {
    Json::Obj(vec![
        field("schema", THROUGHPUT_SCHEMA),
        field("quick", quick),
        field(
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            field("name", r.name.as_str()),
                            field("simulated_cycles", r.simulated_cycles),
                            field("wall_seconds", r.wall_seconds),
                            field("cycles_per_sec", r.cycles_per_sec()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses a `cdf-throughput/1` document into `(name, cycles_per_sec)` pairs.
pub fn rows_from_json(doc: &Json) -> Option<Vec<(String, f64)>> {
    if doc.get("schema").and_then(Json::as_str) != Some(THROUGHPUT_SCHEMA) {
        return None;
    }
    let mut out = Vec::new();
    for row in doc.get("rows").and_then(Json::as_arr)? {
        let name = row.get("name").and_then(Json::as_str)?.to_string();
        let cps = match row.get("cycles_per_sec")? {
            Json::U64(v) => *v as f64,
            Json::F64(v) => *v,
            _ => return None,
        };
        out.push((name, cps));
    }
    Some(out)
}

/// The event-driven/reference cycles-per-second ratio for each case
/// present in `rows` under both variants of its axis (`/event` vs `/scan`
/// rows, and `/mem-event` vs `/mem-lazy` rows).
pub fn speedup_ratios(rows: &[ThroughputRow]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for r in rows {
        let (case, ref_suffix) = if let Some(c) = r.name.strip_suffix("/mem-event") {
            (c, "/mem-lazy")
        } else if let Some(c) = r.name.strip_suffix("/event") {
            (c, "/scan")
        } else {
            continue;
        };
        let reference = rows
            .iter()
            .find(|s| s.name == format!("{case}{ref_suffix}"));
        if let Some(reference) = reference {
            out.push((
                case.to_string(),
                r.cycles_per_sec() / reference.cycles_per_sec(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_roundtrip_and_ratios() {
        let rows = vec![
            ThroughputRow {
                name: "x/event".into(),
                simulated_cycles: 1000,
                wall_seconds: 0.5,
            },
            ThroughputRow {
                name: "x/scan".into(),
                simulated_cycles: 1000,
                wall_seconds: 1.0,
            },
            ThroughputRow {
                name: "y/mem-event".into(),
                simulated_cycles: 1000,
                wall_seconds: 0.25,
            },
            ThroughputRow {
                name: "y/mem-lazy".into(),
                simulated_cycles: 1000,
                wall_seconds: 1.0,
            },
        ];
        let doc = Json::parse(&rows_json(&rows, true).render()).expect("valid");
        let parsed = rows_from_json(&doc).expect("parses");
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed[0].0, "x/event");
        assert!((parsed[0].1 - 2000.0).abs() < 1e-6);
        let ratios = speedup_ratios(&rows);
        assert_eq!(ratios.len(), 2);
        assert!((ratios[0].1 - 2.0).abs() < 1e-9);
        assert_eq!(ratios[1].0, "y");
        assert!((ratios[1].1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn case_list_covers_micro_and_macro() {
        let cases = throughput_cases(true);
        assert!(cases.iter().any(|c| c.name == "stall_window"));
        assert!(cases.iter().any(|c| c.name == "mcf_like/CDF/rob512"));
        let mem_cases: Vec<&str> = cases
            .iter()
            .filter(|c| c.axis == CaseAxis::MemModel)
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(mem_cases, ["mshr_churn", "mcf_like/mem", "lbm_like/mem"]);
        assert_eq!(cases.len(), 12);
    }
}
