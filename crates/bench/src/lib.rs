//! # cdf-bench — the benchmark harness
//!
//! One bench target per paper table/figure (see `benches/`); each is a
//! custom-harness binary that runs the corresponding experiment driver from
//! `cdf_sim::experiments` and prints the paper-style table. Run them all
//! with `cargo bench`, or one with `cargo bench --bench fig13_speedup`.
//!
//! Set `CDF_FAST=1` to use the quick evaluation sizing (smaller windows and
//! footprints) for smoke runs. Set `CDF_SWEEP_JSON=<dir>` to make every
//! figure bench also write its underlying sweep — stamped with config hash,
//! generation parameters and git commit — to `<dir>/<figure>.json`.

#![deny(missing_docs)]

pub mod throughput;

use cdf_sim::{EvalConfig, Sweep};

/// The evaluation sizing used by every figure bench: the default window, or
/// the quick one when `CDF_FAST` is set in the environment.
pub fn eval_config() -> EvalConfig {
    if std::env::var_os("CDF_FAST").is_some() {
        EvalConfig::quick()
    } else {
        EvalConfig::default()
    }
}

/// Writes a figure's underlying sweep to `$CDF_SWEEP_JSON/<tag>.json` when
/// that environment variable is set; no-op (and no failure) otherwise.
pub fn maybe_emit_sweep(tag: &str, sweep: &Sweep) {
    let Some(dir) = std::env::var_os("CDF_SWEEP_JSON") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    let write = || -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{tag}.json"));
        sweep.write_json(&path)?;
        Ok(path)
    };
    match write() {
        Ok(path) => eprintln!("sweep records: {}", path.display()),
        Err(e) => eprintln!("CDF_SWEEP_JSON: cannot write {tag}.json: {e}"),
    }
}
