//! # cdf-bench — the benchmark harness
//!
//! One bench target per paper table/figure (see `benches/`); each is a
//! custom-harness binary that runs the corresponding experiment driver from
//! `cdf_sim::experiments` and prints the paper-style table. Run them all
//! with `cargo bench`, or one with `cargo bench --bench fig13_speedup`.
//!
//! Set `CDF_FAST=1` to use the quick evaluation sizing (smaller windows and
//! footprints) for smoke runs.

#![deny(missing_docs)]

use cdf_sim::EvalConfig;

/// The evaluation sizing used by every figure bench: the default window, or
/// the quick one when `CDF_FAST` is set in the environment.
pub fn eval_config() -> EvalConfig {
    if std::env::var_os("CDF_FAST").is_some() {
        EvalConfig::quick()
    } else {
        EvalConfig::default()
    }
}
