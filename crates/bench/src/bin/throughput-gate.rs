//! `throughput-gate` — CI guard against simulator-throughput regressions.
//!
//! ```text
//! throughput-gate --bless [--full]           # (re)write the baseline JSON
//! throughput-gate [--full] [--tolerance F]   # measure and compare
//! throughput-gate --baseline FILE ...        # non-default baseline path
//! throughput-gate --record [--store FILE]    # also append cdf-result/1
//!                                            # rows to the results store
//! throughput-gate --profile-out FILE         # also write per-case
//!                                            # cdf-profile/1 documents
//! ```
//!
//! Measures the scheduler + memory-model micro/macro suite (best-of-3,
//! quick sizing by default) and compares cycles/second per case against
//! the checked-in `crates/bench/baseline/throughput.json`. A case that
//! regresses by more than the tolerance (default 20%) fails the gate.
//! Wall-clock baselines are machine-dependent — re-bless when the
//! reference hardware changes.
//!
//! Three machine-independent invariants are checked as well:
//! * the `stall_window` micro case must keep the event-driven scheduler at
//!   least 3x faster than the reference scan,
//! * the `mshr_churn` micro case must keep the event-driven memory model
//!   at least 1.2x faster than the lazy reference, and
//! * the event-driven variant must not be slower than its reference on
//!   any case by more than the tolerance.

use cdf_bench::throughput::{
    measure, profile_once, rows_from_json, rows_json, speedup_ratios, throughput_cases,
};
use cdf_sim::json::{field, Json};
use std::path::PathBuf;
use std::process::exit;

/// Counting allocator so `--profile-out` attributes allocation counts and
/// bytes to pipeline stages; free when profiling is off.
#[global_allocator]
static ALLOC: cdf_core::CountingAlloc = cdf_core::CountingAlloc;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let bless = args.iter().any(|a| a == "--bless");
    let tolerance: f64 = flag_value(&args, "--tolerance")
        .map(|v| v.parse().expect("--tolerance takes a fraction, e.g. 0.2"))
        .unwrap_or(0.20);
    let baseline_path = flag_value(&args, "--baseline")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("baseline/throughput.json")
        });

    let quick = !full;
    let rows = measure(&throughput_cases(quick), 3);
    for r in &rows {
        println!(
            "{:32} {:>12.0} cycles/s  ({} cycles in {:.3}s)",
            r.name,
            r.cycles_per_sec(),
            r.simulated_cycles,
            r.wall_seconds
        );
    }
    let ratios = speedup_ratios(&rows);
    for (case, ratio) in &ratios {
        println!("{case:32} event/reference = {ratio:.2}x");
    }

    if args.iter().any(|a| a == "--record") {
        let store_path = flag_value(&args, "--store")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(cdf_sim::DEFAULT_STORE_PATH));
        let store = cdf_sim::ResultStore::open(&store_path);
        let existing = store
            .load()
            .unwrap_or_else(|e| panic!("loading {}: {e}", store_path.display()));
        let prov = cdf_core::Provenance::capture();
        let run_id = cdf_sim::next_run_id(&existing, &prov);
        // The sizing is the only configuration axis the gate varies, so it
        // is the whole config hash: quick vs full rows must not compare as
        // same-config cells.
        let config_hash = if quick {
            "throughput-quick"
        } else {
            "throughput-full"
        };
        let records: Vec<_> = rows
            .iter()
            .enumerate()
            .map(|(seq, r)| {
                let (case, variant) = r.name.rsplit_once('/').unwrap_or((r.name.as_str(), ""));
                cdf_sim::throughput_record(
                    &run_id,
                    seq as u64,
                    &prov,
                    config_hash,
                    case,
                    variant,
                    r.simulated_cycles,
                    r.wall_seconds,
                )
            })
            .collect();
        store
            .append(&records)
            .unwrap_or_else(|e| panic!("recording to {}: {e}", store_path.display()));
        println!(
            "recorded {} throughput row(s) to {} as run {run_id}",
            records.len(),
            store_path.display()
        );
    }

    if let Some(path) = flag_value(&args, "--profile-out") {
        // One profiled pass per case (event-driven variant) so the gate's
        // own wall time is attributable to pipeline stages and subsystems.
        let cases = throughput_cases(quick);
        let profiles: Vec<Json> = cases
            .iter()
            .map(|case| {
                let p = profile_once(case);
                cdf_sim::profile_json(&p, &case.name, "event")
            })
            .collect();
        let doc = Json::Obj(vec![
            field("schema", cdf_sim::schema::PROFILE_SET),
            field("quick", quick),
            field("profiles", Json::Arr(profiles)),
        ]);
        std::fs::write(&path, doc.render_pretty())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {} case profile(s) to {path}", cases.len());
    }

    let mut failures = Vec::new();
    for (micro, floor) in [("stall_window", 3.0), ("mshr_churn", 1.2)] {
        if let Some((_, ratio)) = ratios.iter().find(|(c, _)| c == micro) {
            if *ratio < floor {
                failures.push(format!(
                    "{micro} micro speedup collapsed: {ratio:.2}x < {floor}x"
                ));
            }
        } else {
            failures.push(format!("{micro} case missing from suite"));
        }
    }
    for (case, ratio) in &ratios {
        if *ratio < 1.0 - tolerance {
            failures.push(format!(
                "{case}: event variant slower than its reference by more than {:.0}%: {ratio:.2}x",
                tolerance * 100.0
            ));
        }
    }

    if bless {
        std::fs::create_dir_all(baseline_path.parent().expect("baseline dir"))
            .expect("create baseline dir");
        std::fs::write(&baseline_path, rows_json(&rows, quick).render_pretty())
            .unwrap_or_else(|e| panic!("writing {}: {e}", baseline_path.display()));
        println!("blessed baseline: {}", baseline_path.display());
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Err(e) => failures.push(format!(
                "no baseline at {} ({e}); run `throughput-gate --bless`",
                baseline_path.display()
            )),
            Ok(text) => {
                let doc = Json::parse(&text).expect("baseline JSON parses");
                let baseline = rows_from_json(&doc).unwrap_or_else(|| {
                    panic!(
                        "{} is not a cdf-throughput/1 document",
                        baseline_path.display()
                    )
                });
                for (name, base_cps) in &baseline {
                    let Some(row) = rows.iter().find(|r| &r.name == name) else {
                        failures.push(format!("{name}: in baseline but not measured"));
                        continue;
                    };
                    let cps = row.cycles_per_sec();
                    if cps < base_cps * (1.0 - tolerance) {
                        failures.push(format!(
                            "{name}: {cps:.0} cycles/s is {:.1}% below baseline {base_cps:.0}",
                            (1.0 - cps / base_cps) * 100.0
                        ));
                    }
                }
            }
        }
    }

    if !failures.is_empty() {
        eprintln!("\nthroughput gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        exit(1);
    }
    println!(
        "\nthroughput gate passed (tolerance {:.0}%)",
        tolerance * 100.0
    );
}
