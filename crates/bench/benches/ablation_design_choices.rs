//! Design-choice ablations: dynamic partitioning and the Mask Cache.

use cdf_sim::experiments::AblationDesign;

fn main() {
    let cfg = cdf_bench::eval_config();
    let kernels = [
        "astar_like",
        "bzip_like",
        "soplex_like",
        "mcf_like",
        "xalanc_like",
    ];
    let a = AblationDesign::run(&cfg, &kernels);
    cdf_bench::maybe_emit_sweep("ablation_design_choices", &a.sweep);
    println!("{}", a.render());
}
