//! Fig. 15: memory traffic relative to the baseline.

use cdf_sim::experiments::MatrixFigures;
use cdf_workloads::registry::NAMES;

fn main() {
    let cfg = cdf_bench::eval_config();
    let m = MatrixFigures::run(&cfg, NAMES);
    cdf_bench::maybe_emit_sweep("fig15_traffic", &m.sweep);
    println!("{}", m.render_fig15());
}
