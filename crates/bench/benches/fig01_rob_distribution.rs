//! Fig. 1: critical vs non-critical ROB contents during full-window stalls.

use cdf_sim::experiments::Fig01;
use cdf_workloads::registry::NAMES;

fn main() {
    let cfg = cdf_bench::eval_config();
    let fig = Fig01::run(&cfg, NAMES);
    cdf_bench::maybe_emit_sweep("fig01_rob_distribution", &fig.sweep);
    println!("{}", fig.render());
}
