//! Simulator engineering benchmark (not a paper figure): simulated cycles
//! per wall-clock second, per implementation variant, over the
//! micro/macro case suite in [`cdf_bench::throughput`].
//!
//! Criterion reports each case with `Throughput::Elements(simulated
//! cycles)`, so the `elem/s` column *is* cycles per second. Both variants
//! of each case's axis (scheduler pair or memory-model pair) run every
//! case; simulated cycle counts are asserted identical (the equivalence
//! contract), so only wall time may differ.
//!
//! Environment:
//! * `CDF_BENCH_QUICK=1` (or `CDF_FAST=1`) — smaller instruction caps for
//!   CI smoke runs.
//! * `CDF_BENCH_JSON=<file>` — additionally self-time every case
//!   (best-of-3, outside criterion) and write a `cdf-throughput/1`
//!   document, the input format of the `throughput-gate` binary.

use cdf_bench::throughput::{measure, rows_json, run_once, speedup_ratios, throughput_cases};
use criterion::{criterion_group, Criterion, Throughput};

fn quick() -> bool {
    std::env::var_os("CDF_BENCH_QUICK").is_some() || std::env::var_os("CDF_FAST").is_some()
}

fn bench_variants(c: &mut Criterion) {
    let cases = throughput_cases(quick());
    let mut group = c.benchmark_group("scheduler_throughput");
    group.sample_size(10);
    for case in &cases {
        let [(_, ev_sched, ev_mem), _] = case.axis.variants();
        let (cycles, _) = run_once(case, ev_sched, ev_mem);
        group.throughput(Throughput::Elements(cycles));
        for (label, sched, mem_model) in case.axis.variants() {
            let id = format!("{}/{label}", case.name);
            group.bench_function(&id, |b| b.iter(|| run_once(case, sched, mem_model)));
        }
    }
    group.finish();
}

fn emit_json_if_requested() {
    let Some(path) = std::env::var_os("CDF_BENCH_JSON") else {
        return;
    };
    let quick = quick();
    let rows = measure(&throughput_cases(quick), 3);
    let path = std::path::PathBuf::from(path);
    std::fs::write(&path, rows_json(&rows, quick).render_pretty())
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    eprintln!("throughput rows: {}", path.display());
    for (case, ratio) in speedup_ratios(&rows) {
        eprintln!("  {case}: event/reference = {ratio:.2}x");
    }
}

criterion_group!(benches, bench_variants);

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
    emit_json_if_requested();
}
