//! Simulator engineering benchmark (not a paper figure): cycles simulated
//! per wall-clock second on a representative kernel, for each mechanism.

use cdf_core::{CdfConfig, Core, CoreConfig, CoreMode};
use cdf_workloads::{registry, GenConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_modes(c: &mut Criterion) {
    let gen = GenConfig {
        seed: 0xC0FFEE,
        scale: 1.0 / 16.0,
        iters: u64::MAX / 4,
    };
    let w = registry::by_name("astar_like", &gen).expect("known");
    let mut group = c.benchmark_group("simulate_50k_instructions");
    group.sample_size(10);
    for (label, mode) in [
        ("baseline", CoreMode::Baseline),
        ("cdf", CoreMode::Cdf(CdfConfig::default())),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let cfg = CoreConfig {
                    mode: mode.clone(),
                    ..CoreConfig::default()
                };
                let mut core = Core::new(&w.program, w.memory.clone(), cfg);
                core.run(50_000)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
