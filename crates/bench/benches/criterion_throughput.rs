//! Simulator engineering benchmark (not a paper figure): simulated cycles
//! per wall-clock second, per scheduler implementation, over the
//! micro/macro case suite in [`cdf_bench::throughput`].
//!
//! Criterion reports each case with `Throughput::Elements(simulated
//! cycles)`, so the `elem/s` column *is* cycles per second. Both schedulers
//! run every case; simulated cycle counts are asserted identical (the
//! equivalence contract), so only wall time may differ.
//!
//! Environment:
//! * `CDF_BENCH_QUICK=1` (or `CDF_FAST=1`) — smaller instruction caps for
//!   CI smoke runs.
//! * `CDF_BENCH_JSON=<file>` — additionally self-time every case
//!   (best-of-3, outside criterion) and write a `cdf-throughput/1`
//!   document, the input format of the `throughput-gate` binary.

use cdf_bench::throughput::{
    measure, rows_json, run_once, sched_label, speedup_ratios, throughput_cases,
};
use cdf_core::SchedulerKind;
use criterion::{criterion_group, Criterion, Throughput};

fn quick() -> bool {
    std::env::var_os("CDF_BENCH_QUICK").is_some() || std::env::var_os("CDF_FAST").is_some()
}

fn bench_schedulers(c: &mut Criterion) {
    let cases = throughput_cases(quick());
    let mut group = c.benchmark_group("scheduler_throughput");
    group.sample_size(10);
    for case in &cases {
        let (cycles, _) = run_once(case, SchedulerKind::EventDriven);
        group.throughput(Throughput::Elements(cycles));
        for sched in [SchedulerKind::EventDriven, SchedulerKind::ReferenceScan] {
            let id = format!("{}/{}", case.name, sched_label(sched));
            group.bench_function(&id, |b| b.iter(|| run_once(case, sched)));
        }
    }
    group.finish();
}

fn emit_json_if_requested() {
    let Some(path) = std::env::var_os("CDF_BENCH_JSON") else {
        return;
    };
    let quick = quick();
    let rows = measure(&throughput_cases(quick), 3);
    let path = std::path::PathBuf::from(path);
    std::fs::write(&path, rows_json(&rows, quick).render_pretty())
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    eprintln!("throughput rows: {}", path.display());
    for (case, ratio) in speedup_ratios(&rows) {
        eprintln!("  {case}: event/scan = {ratio:.2}x");
    }
}

criterion_group!(benches, bench_schedulers);

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
    emit_json_if_requested();
}
