//! §4.2 ablation: CDF with and without branch criticality.

use cdf_sim::experiments::{AblationBranches, BRANCHY_KERNELS};

fn main() {
    let cfg = cdf_bench::eval_config();
    let a = AblationBranches::run(&cfg, BRANCHY_KERNELS);
    cdf_bench::maybe_emit_sweep("ablation_branch_critical", &a.sweep);
    println!("{}", a.render());
}
