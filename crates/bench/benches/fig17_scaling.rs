//! Fig. 17: CDF vs baseline across scaled OoO window sizes.

use cdf_sim::experiments::{Fig17, SCALING_KERNELS};

fn main() {
    let cfg = cdf_bench::eval_config();
    let fig = Fig17::run(&cfg, SCALING_KERNELS, &[192, 256, 352, 512]);
    println!("{}", fig.render());
}
