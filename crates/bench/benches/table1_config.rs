//! Reprints the paper's Table 1 from the resolved simulator configuration.

fn main() {
    let cfg = cdf_bench::eval_config();
    println!("{}", cdf_sim::table1_text(&cfg.core));
}
