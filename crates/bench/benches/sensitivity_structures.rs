//! §4.1 sensitivity: CDF speedup vs Critical Uop Cache / Fill Buffer /
//! Delayed Branch Queue capacities.

use cdf_sim::experiments::SensitivityCdfStructures;

fn main() {
    let cfg = cdf_bench::eval_config();
    let kernels = ["astar_like", "mcf_like", "soplex_like", "nab_like"];
    let s = SensitivityCdfStructures::run(&cfg, &kernels);
    println!("{}", s.render());
}
