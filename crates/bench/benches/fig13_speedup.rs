//! Fig. 13: IPC improvement of CDF and PRE over the prefetching baseline.

use cdf_sim::experiments::MatrixFigures;
use cdf_workloads::registry::NAMES;

fn main() {
    let cfg = cdf_bench::eval_config();
    let m = MatrixFigures::run(&cfg, NAMES);
    cdf_bench::maybe_emit_sweep("fig13_speedup", &m.sweep);
    println!("{}", m.render_fig13());
}
