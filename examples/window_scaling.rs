//! Window-scaling explorer (the paper's §2.1/§4.4 argument): show that a
//! CDF core at one window size keeps pace with plain cores at much larger
//! window sizes on an MLP-bound kernel — parallelism from a bigger window
//! without paying for the bigger window.
//!
//! ```text
//! cargo run --release --example window_scaling [workload]
//! ```

use cdf::core::{CdfConfig, CoreConfig, CoreMode};
use cdf::sim::{simulate_workload, EvalConfig, Mechanism};
use cdf::workloads::{registry, GenConfig};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "astar_like".to_string());
    let gen = GenConfig {
        seed: 0xC0FFEE,
        scale: 1.0 / 16.0,
        iters: u64::MAX / 4,
    };
    let w = registry::lookup(&name, &gen).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let eval = EvalConfig {
        gen,
        warmup_instructions: 40_000,
        measure_instructions: 80_000,
        core: CoreConfig::default(),
        max_cycles: None,
        telemetry: None,
        diagnostics: false,
    };

    println!("{name}: IPC of plain cores at growing window sizes vs a 352-entry CDF core");
    println!();
    println!("{:>6} {:>10} {:>10}", "ROB", "base IPC", "MLP");
    for rob in [192usize, 256, 352, 512, 704] {
        let cfg = EvalConfig {
            core: CoreConfig::default().with_scaled_window(rob),
            ..eval.clone()
        };
        let m = simulate_workload(&w, Mechanism::Baseline, &cfg);
        println!("{rob:>6} {:>10.3} {:>10.2}", m.ipc, m.mlp);
    }
    let cdf_cfg = EvalConfig {
        core: CoreConfig {
            mode: CoreMode::Cdf(CdfConfig::default()),
            ..CoreConfig::default()
        },
        ..eval
    };
    let m = simulate_workload(&w, Mechanism::Cdf, &cdf_cfg);
    println!();
    println!(
        "CDF @ ROB 352: IPC {:.3}, MLP {:.2} — the effective window critical \
         instructions see exceeds the physical ROB (§2.1)",
        m.ipc, m.mlp
    );
}
