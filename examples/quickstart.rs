//! Quickstart: run one kernel on the baseline core and on CDF, and print
//! the headline comparison.
//!
//! ```text
//! cargo run --release --example quickstart [workload]
//! ```

use cdf::sim::{simulate, EvalConfig, Mechanism};

fn main() {
    let workload = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "astar_like".to_string());
    let cfg = EvalConfig::quick();

    println!(
        "workload: {workload}  (quick sizing: {}k warmup + {}k measured instructions)",
        cfg.warmup_instructions / 1000,
        cfg.measure_instructions / 1000
    );
    println!();

    let base = simulate(&workload, Mechanism::Baseline, &cfg);
    let cdf = simulate(&workload, Mechanism::Cdf, &cfg);
    let pre = simulate(&workload, Mechanism::Pre, &cfg);

    println!(
        "{:12} {:>8} {:>8} {:>10} {:>12}",
        "mechanism", "IPC", "MLP", "DRAM lines", "energy (uJ)"
    );
    for m in [&base, &cdf, &pre] {
        println!(
            "{:12} {:>8.3} {:>8.2} {:>10} {:>12.1}",
            m.mechanism,
            m.ipc,
            m.mlp,
            m.dram_lines,
            m.energy_nj / 1000.0
        );
    }
    println!();
    println!(
        "CDF speedup: {:+.1}%   PRE speedup: {:+.1}%",
        (cdf.ipc / base.ipc - 1.0) * 100.0,
        (pre.ipc / base.ipc - 1.0) * 100.0
    );
    println!(
        "CDF issued {} critical uops over {} measured instructions ({} CDF-mode cycles).",
        cdf.critical_uops, cdf.instructions, cdf.cdf_mode_cycles
    );
}
