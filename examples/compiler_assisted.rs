//! Compiler-assisted CDF (the paper's §6 future-work augmentation): seed the
//! Critical Uop Cache with statically computed chains for the loads a
//! profiling compiler would flag, and compare cold-start behaviour against
//! purely runtime-trained CDF over a short execution window.
//!
//! ```text
//! cargo run --release --example compiler_assisted
//! ```

use cdf::core::{CdfConfig, Core, CoreConfig, CoreMode};
use cdf::workloads::{profile, registry, GenConfig};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "nab_like".to_string());
    let gen = GenConfig {
        seed: 0xC0FFEE,
        scale: 0.25,
        iters: u64::MAX / 4,
    };
    let w = registry::by_name(&name, &gen).unwrap_or_else(|| {
        eprintln!("unknown workload `{name}`");
        std::process::exit(1);
    });

    // The "compiler profile pass": a functional execution against an
    // LLC-sized cache model flags the delinquent loads.
    let seeds = profile::delinquent_loads(&w, 300_000, 0.20);
    println!(
        "profile pass flagged {} delinquent load(s): {:?}",
        seeds.len(),
        seeds
    );

    let window = 40_000; // short: training time dominates

    let run = |preinstall: bool| {
        let cfg = CoreConfig {
            mode: CoreMode::Cdf(CdfConfig::default()),
            ..CoreConfig::default()
        };
        let mut core = Core::new(&w.program, w.memory.clone(), cfg);
        if preinstall {
            core.preinstall_chains(&seeds);
        }
        let stats = core.run(window);
        (
            stats.ipc(),
            stats.cdf_mode_cycles,
            stats.cycles,
            stats.cdf_entries,
        )
    };

    let (ipc_rt, cdf_rt, cyc_rt, entries_rt) = run(false);
    let (ipc_cc, cdf_cc, cyc_cc, entries_cc) = run(true);

    println!("{name}, first {window} instructions (cold caches, cold predictors):");
    println!();
    println!(
        "{:24} {:>8} {:>12} {:>12}",
        "configuration", "IPC", "CDF cycles", "CDF entries"
    );
    println!(
        "{:24} {:>8.3} {:>11.1}% {:>12}",
        "runtime-trained CDF",
        ipc_rt,
        cdf_rt as f64 / cyc_rt as f64 * 100.0,
        entries_rt
    );
    println!(
        "{:24} {:>8.3} {:>11.1}% {:>12}",
        "compiler-seeded CDF",
        ipc_cc,
        cdf_cc as f64 / cyc_cc as f64 * 100.0,
        entries_cc
    );
    println!();
    println!(
        "Seeding removes the CCT training + first-walk delay: {:+.1}% IPC over the cold window.",
        (ipc_cc / ipc_rt - 1.0) * 100.0
    );
    println!(
        "(§6: \"compilers ... can be used to augment CDF by statically generating a set of\n\
         possible chains that CDF can then choose to fetch and execute at runtime.\")"
    );
}
