//! Per-workload engagement diagnostics: one row per kernel with the baseline
//! characteristics (IPC, miss and misprediction rates, stall fraction, MLP)
//! and what each mechanism did with it (CDF-mode residency, critical uops,
//! dependence violations; runahead volume). Useful when adding a kernel or
//! re-calibrating a mechanism.
//!
//! ```text
//! cargo run --release --example diagnostics [--fast]
//! ```

use cdf::sim::{simulate, EvalConfig, Mechanism};
use cdf::workloads::registry::NAMES;

fn main() {
    let cfg = if std::env::args().any(|a| a == "--fast") {
        EvalConfig::quick()
    } else {
        EvalConfig::default()
    };
    println!("workload      base_ipc llc_mpki br_mpki stall% mlp   | cdf_ipc c_mlp mode% crit_uops viol | pre_ipc p_mlp ra_uops");
    for name in NAMES {
        let b = simulate(name, Mechanism::Baseline, &cfg);
        let c = simulate(name, Mechanism::Cdf, &cfg);
        let p = simulate(name, Mechanism::Pre, &cfg);
        println!(
            "{:13} {:8.3} {:8.2} {:7.2} {:5.1} {:5.2} | {:7.3} {:5.2} {:5.1} {:9} {:4} | {:7.3} {:5.2} {:7}",
            name, b.ipc, b.llc_mpki, b.branch_mpki,
            b.full_window_stall_cycles as f64 / b.cycles as f64 * 100.0, b.mlp,
            c.ipc, c.mlp, c.cdf_mode_cycles as f64 / c.cycles as f64 * 100.0,
            c.critical_uops, c.dependence_violations,
            p.ipc, p.mlp, p.runahead_uops,
        );
    }
}
