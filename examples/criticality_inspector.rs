//! Criticality inspector: runs a kernel in CDF mode and dumps what the
//! identification machinery learned — the per-block criticality masks in the
//! Mask Cache and the traces resident in the Critical Uop Cache — next to
//! the program listing, the way the paper's Figs. 5–7 walk through the
//! astar example.
//!
//! ```text
//! cargo run --release --example criticality_inspector [workload]
//! ```

use cdf::core::{CdfConfig, Core, CoreConfig, CoreMode};
use cdf::isa::Pc;
use cdf::workloads::{registry, GenConfig};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "astar_like".to_string());
    let gen = GenConfig {
        seed: 0xC0FFEE,
        scale: 1.0 / 16.0,
        iters: u64::MAX / 4,
    };
    let w = registry::by_name(&name, &gen).unwrap_or_else(|| {
        eprintln!("unknown workload `{name}`; known: {:?}", registry::NAMES);
        std::process::exit(1);
    });

    let cfg = CoreConfig {
        mode: CoreMode::Cdf(CdfConfig::default()),
        ..CoreConfig::default()
    };
    let mut core = Core::new(&w.program, w.memory.clone(), cfg);
    let stats = core.run(120_000);

    println!(
        "{name}: {} instructions in {} cycles (IPC {:.3})",
        stats.retired,
        stats.cycles,
        stats.ipc()
    );
    println!(
        "walks: {}   traces installed: {}   CDF entries: {}   critical uops issued: {}",
        stats.walks, stats.traces_installed, stats.cdf_entries, stats.critical_uops_issued
    );
    println!();

    let masks = core.mask_cache().expect("CDF mode has a mask cache");
    let uop_cache = core.uop_cache().expect("CDF mode has a uop cache");

    println!("program listing with learned criticality (C = in the Critical Uop Cache trace):");
    println!();
    for block in w.program.blocks() {
        let trace = uop_cache.peek(block.start);
        let mask = masks.get(block.start);
        let header = match (&trace, mask) {
            (Some(t), _) => format!(
                "block @ {} (len {}, {} critical uops in trace)",
                block.start,
                block.len,
                t.crit_offsets.len()
            ),
            (None, Some(_)) => format!("block @ {} (len {}, mask only)", block.start, block.len),
            (None, None) => format!("block @ {} (len {}, never marked)", block.start, block.len),
        };
        println!("-- {header}");
        for off in 0..block.len {
            let pc = Pc::new(block.start.index() as u32 + off);
            let in_trace = trace
                .map(|t| t.crit_offsets.contains(&(off as u8)))
                .unwrap_or(false);
            let marker = if in_trace { "C" } else { " " };
            println!("   {marker} {pc:>6}  {}", w.program.uop(pc));
        }
    }
}
