//! CDF vs Precise Runahead head-to-head (the paper's §2.4 comparison): runs
//! the kernels whose behaviours separate the two mechanisms and prints
//! speedup, traffic, and energy side by side.
//!
//! ```text
//! cargo run --release --example runahead_comparison
//! ```

use cdf::sim::report::{pct_delta, Table};
use cdf::sim::{simulate, EvalConfig, Mechanism};

fn main() {
    let cfg = EvalConfig::quick();
    // lbm: stalls too short for runahead (§2.4a). astar/soplex: MLP from
    // independent misses. mcf: dependent misses — early initiation only.
    // gems: dense misses where PRE's unbounded prefetch distance competes.
    let kernels = [
        "lbm_like",
        "astar_like",
        "soplex_like",
        "mcf_like",
        "gems_like",
    ];

    let mut t = Table::new(&[
        "workload",
        "CDF speedup",
        "PRE speedup",
        "CDF traffic",
        "PRE traffic",
        "CDF energy",
        "PRE energy",
    ]);
    for name in kernels {
        let b = simulate(name, Mechanism::Baseline, &cfg);
        let c = simulate(name, Mechanism::Cdf, &cfg);
        let p = simulate(name, Mechanism::Pre, &cfg);
        t.row(&[
            name,
            &pct_delta(c.ipc / b.ipc),
            &pct_delta(p.ipc / b.ipc),
            &pct_delta(c.dram_lines as f64 / b.dram_lines.max(1) as f64),
            &pct_delta(p.dram_lines as f64 / b.dram_lines.max(1) as f64),
            &pct_delta(c.energy_nj / b.energy_nj),
            &pct_delta(p.energy_nj / b.energy_nj),
        ]);
    }
    println!("CDF vs Precise Runahead (relative to the prefetching baseline)");
    println!();
    println!("{}", t.render());
    println!(
        "The paper's §2.4 claims to look for: CDF wins where stalls are short (lbm),\n\
         where branches gate the window (astar), and on far dependent chains (mcf);\n\
         PRE stays closer on dense regular misses (gems) and pays in traffic/energy."
    );
}
