//! Pipeline timeline: trace a window of the astar kernel under the baseline
//! and under CDF and render both side by side. Under CDF the critical-stream
//! uops (`*`) fetch and execute many cycles before their program-order
//! position — the "effective window larger than the ROB" of §2.1, visible.
//!
//! ```text
//! cargo run --release --example pipeline_trace [workload] [first_seq] [count]
//! ```

use cdf::core::{CdfConfig, Core, CoreConfig, CoreMode};
use cdf::workloads::{registry, GenConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "astar_like".to_string());
    let gen = GenConfig {
        seed: 0xC0FFEE,
        scale: 1.0 / 16.0,
        iters: u64::MAX / 4,
    };
    let w = registry::by_name(&name, &gen).unwrap_or_else(|| {
        eprintln!("unknown workload `{name}`");
        std::process::exit(1);
    });

    // Trace deep enough that CDF has trained and engaged.
    let trace_limit = 60_000u64;
    let show_from = 55_000u64;
    let show_count = 70u64;

    for (label, mode) in [
        ("baseline", CoreMode::Baseline),
        ("CDF", CoreMode::Cdf(CdfConfig::default())),
    ] {
        let cfg = CoreConfig {
            mode,
            ..CoreConfig::default()
        };
        let mut core = Core::new(&w.program, w.memory.clone(), cfg);
        core.enable_trace(trace_limit);
        core.run(trace_limit);
        let trace = core.pipe_trace().expect("tracing enabled");

        // Re-render only the requested window, re-based to its first fetch.
        let mut window = cdf::core::trace::PipeTrace::new(trace_limit);
        for (seq, row) in trace.rows() {
            if seq.0 >= show_from && seq.0 < show_from + show_count {
                if let Some(r) = window.row(seq, row.pc) {
                    *r = *row;
                }
            }
        }
        println!(
            "=== {name} on {label} (seqs {show_from}..{}) ===",
            show_from + show_count
        );
        println!("{}", window.render(220));
    }
    println!(
        "Reading the CDF timeline: rows flagged `*` were issued by the critical\n\
     stream — their F/D/E land far left of neighbouring rows, i.e. critical\n\
     instructions run in a window larger than their program-order position."
    );
}
