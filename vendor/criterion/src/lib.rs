//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of the criterion 0.5 API the workspace's benchmark
//! targets use: [`Criterion`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::throughput`],
//! [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurements are plain
//! wall-clock samples printed as mean/min/max (plus an elem/s or bytes/s
//! rate when a [`Throughput`] is set); there is no statistical analysis,
//! plotting, or saved baselines.
//!
//! When invoked with `--test` (as `cargo test` does for benchmark targets),
//! every benchmark body runs exactly once so the target acts as a smoke
//! test.

#![deny(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(id, sample_size, None, f);
        self
    }

    fn run_one<F>(
        &mut self,
        id: &str,
        sample_size: usize,
        throughput: Option<&Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.test_mode {
            1
        } else {
            sample_size.max(1)
        };
        let warmup = if self.test_mode { 0 } else { 2 };
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        for _ in 0..warmup {
            f(&mut b);
        }
        b.elapsed = Duration::ZERO;
        b.iters = 0;
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let before = (b.elapsed, b.iters);
            f(&mut b);
            let d_time = (b.elapsed - before.0).as_secs_f64();
            let d_iters = (b.iters - before.1).max(1);
            per_iter.push(d_time / d_iters as f64);
        }
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        let rate = match throughput {
            Some(&Throughput::Elements(n)) if mean > 0.0 => {
                format!("  thrpt {:.0} elem/s", n as f64 / mean)
            }
            Some(&Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  thrpt {:.0} bytes/s", n as f64 / mean)
            }
            _ => String::new(),
        };
        println!(
            "  {id}: mean {} / iter  (min {}, max {}, {} samples){rate}",
            fmt_duration(mean),
            fmt_duration(min),
            fmt_duration(max),
            per_iter.len()
        );
    }
}

/// How much work one benchmark iteration represents; when set on a group,
/// each report also prints a per-second rate (criterion's `elem/s` column).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration (e.g. simulated cycles).
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn fmt_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// A group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Sets the work-per-iteration used for rate reporting on subsequent
    /// benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        let id = format!("{}/{id}", self.name);
        let throughput = self.throughput;
        self.criterion
            .run_one(&id, sample_size, throughput.as_ref(), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark body; [`iter`](Bencher::iter) times the closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one execution of `f` (accumulated into the current sample).
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Collects benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            test_mode: true,
            default_sample_size: 10,
        };
        sample_bench(&mut c);
        c.bench_function("direct", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn macro_group_compiles() {
        let mut c = Criterion {
            test_mode: true,
            default_sample_size: 10,
        };
        benches(&mut c);
    }
}
