//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements the subset of the proptest 1.x API the workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*` macros, [`any`],
//! strategy combinators (`prop_map`, tuples, ranges, [`collection::vec`],
//! [`prop_oneof!`], [`Just`]) and [`ProptestConfig`].
//!
//! Semantics: each test runs `cases` deterministic pseudo-random cases (the
//! RNG is seeded from the test's module path and name plus the case index,
//! so failures reproduce across runs and machines). There is no shrinking;
//! on failure the offending generated inputs are printed in full so the case
//! can be turned into a regression test by hand. `PROPTEST_CASES` in the
//! environment overrides the case count, exactly like upstream.

#![deny(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

pub mod test_runner;

pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Generation strategies: the core [`Strategy`] trait and combinators.
pub mod strategy {
    use super::*;

    /// A strategy produces values of an output type from a seeded RNG.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking; a
    /// strategy is just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value: fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A type-erased, reference-counted strategy.
    pub struct BoxedStrategy<V>(pub(crate) Rc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> fmt::Debug for BoxedStrategy<V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Object-safe view of [`Strategy`] backing [`BoxedStrategy`].
    pub(crate) trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Equal-weight choice among strategies of one output type (the
    /// expansion of [`prop_oneof!`]).
    #[derive(Clone, Debug)]
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V: fmt::Debug> Union<V> {
        /// Builds the union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V: fmt::Debug> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s,)+> Strategy for ($($s,)+)
            where
                $($s: Strategy,)+
            {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// The [`Arbitrary`] trait and the [`any`] entry point.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::*;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized + fmt::Debug {
        /// Draws one value over the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Printable ASCII keeps generated text debuggable.
            (0x20 + rng.below(0x5f)) as u8 as char
        }
    }

    /// Strategy over a type's whole domain.
    #[derive(Clone, Copy, Debug)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A` (`any::<u64>()`, `any::<bool>()`, …).
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Length bounds for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, 0..200)`: vectors of generated elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs, in one import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Equal-weight choice among strategies with the same output type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fails the current case (with an optional formatted message) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` != `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)+)
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`ProptestConfig::cases`] deterministic
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config = $config;
            let __pt_test = concat!(module_path!(), "::", stringify!($name));
            for __pt_case in 0..__pt_config.cases {
                let mut __pt_rng =
                    $crate::test_runner::TestRng::for_case(__pt_test, __pt_case as u64);
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strategy), &mut __pt_rng);
                )+
                let __pt_inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                    $(&$arg,)+
                );
                let __pt_result: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = {
                    #[allow(clippy::redundant_closure_call)]
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })()
                };
                if let ::std::result::Result::Err(e) = __pt_result {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}\ninputs:\n{}",
                        __pt_case + 1,
                        __pt_config.cases,
                        __pt_test,
                        e,
                        __pt_inputs
                    );
                }
            }
        }
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(v in 3u32..17, w in 0usize..1) {
            prop_assert!((3..17).contains(&v));
            prop_assert_eq!(w, 0);
        }

        #[test]
        fn vec_lengths_in_range(xs in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5, "len {}", xs.len());
        }

        #[test]
        fn mapped_strategies_apply(v in evens()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn oneof_covers_options(v in prop_oneof![0u64..1, 10u64..11]) {
            prop_assert!(v == 0 || v == 10, "v = {v}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_cases_respected(_v in 0u8..10) {
            // Three cases run; nothing to assert beyond not panicking.
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("x", 0);
        let mut b = crate::TestRng::for_case("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        #[should_panic(expected = "inputs")]
        fn failures_report_inputs(v in 0u8..10) {
            prop_assert!(v > 200, "v = {v}");
        }
    }
}
