//! Deterministic case runner support: the per-case RNG, the config, and the
//! error type `prop_assert*` produce.

use std::fmt;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A failed property case (the `Err` of a `prop_assert*`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic per-case generator (xoshiro256++ seeded from the test
/// name and case index, so every run of every machine sees the same cases).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    h
}

impl TestRng {
    /// The RNG for case `case` of the test named `test`.
    pub fn for_case(test: &str, case: u64) -> TestRng {
        let mut sm = fnv1a(test.as_bytes()) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}
