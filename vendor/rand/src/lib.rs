//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) subset of the rand 0.8 API the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through SplitMix64
//! — deterministic, fast, and statistically strong enough for workload data
//! generation. The exact output stream differs from upstream `StdRng`
//! (upstream is ChaCha12); everything in this workspace treats the stream as
//! an opaque deterministic function of the seed, which this crate preserves.

#![deny(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream rand).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from (the `SampleRange` of upstream rand).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling (Lemire); the bias over a
                // 64-bit draw is negligible for the span sizes used here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                if s as u64 == 0 && e as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (e as u64).wrapping_sub(s as u64).wrapping_add(1);
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (s as u64).wrapping_add(hi) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws a bool that is true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = r.gen_range(0..1);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(1);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.gen_range(0usize..8)] += 1;
        }
        for b in buckets {
            assert!((700..1300).contains(&b), "bucket count {b} far from 1000");
        }
    }
}
