//! # cdf — Criticality Driven Fetch, reproduced in Rust
//!
//! A from-scratch reproduction of **"Criticality Driven Fetch"** (Deshmukh &
//! Patt, MICRO 2021): an execution-driven, cycle-level out-of-order core
//! simulator implementing the complete CDF mechanism, a Precise Runahead
//! comparator, and every substrate the paper's evaluation depends on —
//! TAGE-SC-L branch prediction, a three-level cache hierarchy with a
//! feedback-throttled stream prefetcher, a DDR4-class DRAM model, an
//! activity-based energy/area model, and a suite of fourteen SPEC-like
//! synthetic kernels.
//!
//! This façade crate re-exports the workspace members under stable paths:
//!
//! * [`isa`] — the uop ISA, programs, and the functional executor;
//! * [`workloads`] — the synthetic kernel suite;
//! * [`bpred`] — branch predictors;
//! * [`mem`] — caches, MSHRs, prefetcher, DRAM;
//! * [`energy`] — the energy/area model;
//! * [`core`] — the OoO core with CDF and PRE;
//! * [`sim`] — the simulation runner and experiment harness.
//!
//! ## Quickstart
//!
//! ```
//! use cdf::sim::{simulate, EvalConfig, Mechanism};
//!
//! let cfg = EvalConfig::quick();
//! let base = simulate("astar_like", Mechanism::Baseline, &cfg);
//! let with_cdf = simulate("astar_like", Mechanism::Cdf, &cfg);
//! println!(
//!     "astar_like: baseline {:.3} IPC, CDF {:.3} IPC ({:+.1}%)",
//!     base.ipc,
//!     with_cdf.ipc,
//!     (with_cdf.ipc / base.ipc - 1.0) * 100.0
//! );
//! assert!(with_cdf.ipc > base.ipc, "CDF speeds up the astar kernel");
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/benches/` for
//! the per-figure reproduction harness.

#![deny(missing_docs)]

pub use cdf_bpred as bpred;
pub use cdf_core as core;
pub use cdf_energy as energy;
pub use cdf_isa as isa;
pub use cdf_mem as mem;
pub use cdf_sim as sim;
pub use cdf_workloads as workloads;
